#include "fault/fault.hpp"

#include <array>
#include <limits>
#include <numeric>
#include <sstream>
#include <utility>

#include "support/assert.hpp"
#include "support/hash.hpp"
#include "support/parse.hpp"
#include "support/rng.hpp"

namespace arl::fault {

namespace {

using support::ContractViolation;

/// Domain seed of the fault digest family — distinct from the workload/wire
/// digest domain (0xD157) and the shard-report body domain (0xB0D7), so a
/// fault name and a workload name can never collide into one digest.
constexpr std::uint64_t kFaultDigestSeed = 0xFA17;

/// The batch's reserved fault stream id (see fault_stream_seed), disjoint
/// from engine::sweep_configuration_seed's 0x5EEDF00D configuration stream.
constexpr std::uint64_t kFaultStream = 0xFA175EED;

// Per-event dice streams inside one plan seed: the stream id is absorbed
// next to (round, node), so the drop and corrupt dice of one round are
// independent draws.
constexpr std::uint64_t kDropStream = 1;
constexpr std::uint64_t kCorruptStream = 2;
constexpr std::uint64_t kCrashStream = 3;
constexpr std::uint64_t kWakeStream = 4;

/// Registry-order kind tokens (the part of a name before ':').
constexpr std::array<std::pair<FaultKind, const char*>, 5> kKinds = {{
    {FaultKind::None, "none"},
    {FaultKind::Drop, "drop"},
    {FaultKind::Corrupt, "corrupt"},
    {FaultKind::Crash, "crash"},
    {FaultKind::AdversarialWake, "adversarial-wake"},
}};

const char* kind_token(FaultKind kind) {
  for (const auto& [k, token] : kKinds) {
    if (k == kind) {
      return token;
    }
  }
  return "?";
}

/// Shortest decimal spelling that round-trips to exactly `value` — the
/// canonical form of probabilities in names (same idiom as workload names).
std::string shortest_double(double value) {
  for (int precision = 1; precision <= std::numeric_limits<double>::max_digits10;
       ++precision) {
    std::ostringstream out;
    out.precision(precision);
    out << value;
    if (std::stod(out.str()) == value) {
      return out.str();
    }
  }
  return std::to_string(value);
}

void check(bool ok, const std::string& what) {
  if (!ok) {
    throw ContractViolation(what);
  }
}

/// Parameter bounds, enforced by parse_fault AND the factories (a spec built
/// by hand gets the same validation the grammar applies).
void validate(const FaultSpec& spec) {
  const std::string at = std::string("fault '") + kind_token(spec.kind) + "': ";
  switch (spec.kind) {
    case FaultKind::Drop:
    case FaultKind::Corrupt:
      check(spec.probability >= 0.0 && spec.probability <= 1.0,
            at + "probability must be in [0, 1]");
      break;
    case FaultKind::Crash:
      check(spec.crashes <= 1'000'000, at + "k must be in [0, 1000000]");
      check(spec.window >= 1 && spec.window <= 1'000'000,
            at + "window must be in [1, 1000000]");
      break;
    case FaultKind::AdversarialWake:
      check(spec.stagger <= 1'000'000, at + "W must be in [0, 1000000]");
      break;
    case FaultKind::None:
      break;
  }
}

std::uint32_t parse_number(const std::string& value, const std::string& what) {
  check(!value.empty() && value.size() <= 9 &&
            value.find_first_not_of("0123456789") == std::string::npos,
        what + " must be a decimal integer in [0, 999999999] (got '" + value + "')");
  return static_cast<std::uint32_t>(std::stoul(value));
}

double parse_probability(const std::string& value, const std::string& what) {
  // Only canonical non-negative spellings (support::is_canonical_number, the
  // grammar every wire surface shares) — so a name parses to exactly the
  // double its writer printed.
  check(support::is_canonical_number(value),
        what + " must be a decimal number (got '" + value + "')");
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    throw ContractViolation(what + " is out of range (got '" + value + "')");
  }
}

}  // namespace

FaultSpec FaultSpec::none() { return FaultSpec{}; }

FaultSpec FaultSpec::drop(double p, std::uint32_t split) {
  FaultSpec spec;
  spec.kind = FaultKind::Drop;
  spec.probability = p;
  spec.seed_split = split;
  validate(spec);
  return spec;
}

FaultSpec FaultSpec::corrupt(double p) {
  FaultSpec spec;
  spec.kind = FaultKind::Corrupt;
  spec.probability = p;
  validate(spec);
  return spec;
}

FaultSpec FaultSpec::crash(std::uint32_t k, std::uint32_t window) {
  FaultSpec spec;
  spec.kind = FaultKind::Crash;
  spec.crashes = k;
  spec.window = window;
  validate(spec);
  return spec;
}

FaultSpec FaultSpec::adversarial_wake(std::uint32_t stagger) {
  FaultSpec spec;
  spec.kind = FaultKind::AdversarialWake;
  spec.stagger = stagger;
  validate(spec);
  return spec;
}

bool FaultSpec::active() const {
  switch (kind) {
    case FaultKind::None:
      return false;
    case FaultKind::Drop:
    case FaultKind::Corrupt:
      return probability > 0.0;
    case FaultKind::Crash:
      return crashes > 0;
    case FaultKind::AdversarialWake:
      return stagger > 0;
  }
  return false;
}

std::string FaultSpec::name() const {
  std::string out = kind_token(kind);
  switch (kind) {
    case FaultKind::None:
      break;
    case FaultKind::Drop:
      out += ":" + shortest_double(probability);
      if (seed_split != 0) {
        out += "," + std::to_string(seed_split);
      }
      break;
    case FaultKind::Corrupt:
      out += ":" + shortest_double(probability);
      break;
    case FaultKind::Crash:
      out += ":" + std::to_string(crashes);
      if (window != kDefaultCrashWindow) {
        out += "," + std::to_string(window);
      }
      break;
    case FaultKind::AdversarialWake:
      out += ":" + std::to_string(stagger);
      break;
  }
  return out;
}

std::string FaultSpec::describe() const {
  switch (kind) {
    case FaultKind::None:
      return "the paper's reliable channel: nothing is injected";
    case FaultKind::Drop:
      return "lossy channel: each reception is erased to silence with probability p";
    case FaultKind::Corrupt:
      return "garbling channel: each heard message flips to noise with probability p";
    case FaultKind::Crash:
      return "crash-stop: k nodes halt forever at deterministic rounds in [0, window)";
    case FaultKind::AdversarialWake:
      return "wakeup staggering: each node's wakeup is delayed by a deterministic "
             "amount in [0, W]";
  }
  return "?";
}

std::uint64_t FaultSpec::digest() const {
  return support::hash_text(name(), kFaultDigestSeed);
}

void FaultContext::reset(const FaultPlan& plan, std::size_t nodes) {
  plan_ = plan;
  active_ = plan.active();
  crash_round_.clear();
  if (!active_) {
    return;
  }
  dice_seed_ = plan.seed;
  if (plan.spec.kind == FaultKind::Drop && plan.spec.seed_split != 0) {
    dice_seed_ = support::Rng(plan.seed).split(plan.spec.seed_split).next();
  }
  if (plan.spec.kind == FaultKind::Crash) {
    crash_round_.assign(nodes, kNeverCrashes);
    std::vector<std::uint32_t> victims(nodes);
    std::iota(victims.begin(), victims.end(), 0u);
    support::Rng rng(support::Hash64(dice_seed_).absorb(kCrashStream).digest());
    rng.shuffle(victims);
    const std::size_t count = std::min<std::size_t>(plan.spec.crashes, nodes);
    for (std::size_t i = 0; i < count; ++i) {
      crash_round_[victims[i]] = rng.below(plan.spec.window);
    }
  }
}

bool FaultContext::channel_roll(std::uint64_t stream, std::uint64_t round,
                                std::uint32_t node, double probability) const {
  // A pure function of (seed, stream, round, node): the die is rolled by
  // hashing the coordinates, not by consuming a stream, so the simulator may
  // evaluate receptions in any order and replay stays exact.
  const std::uint64_t raw = support::Hash64(dice_seed_)
                                .absorb(stream)
                                .absorb(round)
                                .absorb(node)
                                .digest();
  return support::Rng(raw).bernoulli(probability);
}

bool FaultContext::drop_message(std::uint64_t round, std::uint32_t node) const {
  if (!active_ || plan_.spec.kind != FaultKind::Drop) {
    return false;
  }
  return channel_roll(kDropStream, round, node, plan_.spec.probability);
}

bool FaultContext::corrupt_message(std::uint64_t round, std::uint32_t node) const {
  if (!active_ || plan_.spec.kind != FaultKind::Corrupt) {
    return false;
  }
  return channel_roll(kCorruptStream, round, node, plan_.spec.probability);
}

std::uint64_t FaultContext::wake_delay(std::uint32_t node) const {
  if (!active_ || plan_.spec.kind != FaultKind::AdversarialWake) {
    return 0;
  }
  const std::uint64_t raw =
      support::Hash64(dice_seed_).absorb(kWakeStream).absorb(node).digest();
  return support::Rng(raw).below(static_cast<std::uint64_t>(plan_.spec.stagger) + 1);
}

const std::vector<FaultSpec>& registered_faults() {
  static const std::vector<FaultSpec> registry = {
      FaultSpec::none(),
      FaultSpec::drop(0.1),
      FaultSpec::corrupt(0.05),
      FaultSpec::crash(1),
      FaultSpec::adversarial_wake(8),
  };
  return registry;
}

std::string fault_names() {
  return "none, drop:P[,SPLIT], corrupt:P, crash:K[,WINDOW], adversarial-wake:W";
}

FaultSpec parse_fault(std::string_view text) {
  const std::size_t colon = text.find(':');
  const std::string token(text.substr(0, colon));
  FaultKind kind = FaultKind::None;
  bool known = false;
  for (const auto& [k, name] : kKinds) {
    if (token == name) {
      kind = k;
      known = true;
      break;
    }
  }
  if (!known) {
    throw ContractViolation("unknown fault '" + std::string(text) +
                            "' (registered: " + fault_names() + ")");
  }

  std::vector<std::string> params;
  if (colon != std::string_view::npos) {
    std::string_view rest = text.substr(colon + 1);
    while (true) {
      const std::size_t comma = rest.find(',');
      params.emplace_back(rest.substr(0, comma));
      if (comma == std::string_view::npos) {
        break;
      }
      rest = rest.substr(comma + 1);
    }
  }
  const std::string at = "fault '" + token + "': ";
  const auto arity = [&](std::size_t min_params, std::size_t max_params,
                         const std::string& grammar) {
    check(params.size() >= min_params && params.size() <= max_params,
          at + "takes " + grammar + " (got '" + std::string(text) + "')");
  };

  FaultSpec spec;
  spec.kind = kind;
  switch (kind) {
    case FaultKind::None:
      arity(0, 0, "no parameters");
      break;
    case FaultKind::Drop:
      arity(1, 2, "drop:P[,SPLIT]");
      spec.probability = parse_probability(params[0], at + "P");
      if (params.size() == 2) {
        spec.seed_split = parse_number(params[1], at + "SPLIT");
      }
      break;
    case FaultKind::Corrupt:
      arity(1, 1, "corrupt:P");
      spec.probability = parse_probability(params[0], at + "P");
      break;
    case FaultKind::Crash:
      arity(1, 2, "crash:K[,WINDOW]");
      spec.crashes = parse_number(params[0], at + "K");
      if (params.size() == 2) {
        spec.window = parse_number(params[1], at + "WINDOW");
      }
      break;
    case FaultKind::AdversarialWake:
      arity(1, 1, "adversarial-wake:W");
      spec.stagger = parse_number(params[0], at + "W");
      break;
  }
  validate(spec);
  return spec;
}

std::uint64_t fault_stream_seed(std::uint64_t batch_seed) {
  return support::Rng(batch_seed).split(kFaultStream).next();
}

std::uint64_t job_fault_seed(std::uint64_t batch_seed, std::uint64_t job) {
  return support::Rng(fault_stream_seed(batch_seed)).split(job).next();
}

}  // namespace arl::fault
