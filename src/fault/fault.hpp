#pragma once

/// \file fault.hpp
/// The fault axis as a first-class API, mirroring the protocol and workload
/// registries (core/protocol.hpp, engine/workload.hpp): a value-typed
/// `FaultSpec` naming which adversary a run faces, a string-keyed registry
/// (`parse_fault` / `registered_faults`), and the deterministic runtime
/// (`FaultPlan`, `FaultContext`) the simulator consults round by round.
///
/// Why this exists: the paper's model assumes a perfectly reliable channel,
/// but robustness questions — how elections degrade under loss, corruption,
/// crash-stop nodes or adversarial wakeup staggering — need the same sweep
/// machinery (sharding, merging, caching, wire identity) the workload axis
/// already has.  With the fault behind one spec, a robustness sweep is
/// `arl sweep --fault=drop:0.1`, shard reports carry the fault spelling, and
/// two sweeps under different adversaries never merge.
///
/// Identity contract: `parse_fault(f.name()) == f` for every spec, and
/// `f.digest()` is a canonical 64-bit digest of the name under its own
/// domain seed (distinct from the workload and wire digest domains).
///
/// Determinism contract: every injected event is a pure function of
/// (FaultPlan::seed, round, node) — no hidden stream state — so a faulted
/// run replays bit-identically on any thread count, engine or shard, and
/// the per-job seed derives from the batch master seed through a reserved
/// stream split (`job_fault_seed`, the `sweep_configuration_seed`
/// discipline), independent of the coin and configuration streams.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace arl::fault {

/// Which adversary a spec names.
enum class FaultKind : std::uint8_t {
  None,             ///< the reliable channel of the paper's model
  Drop,             ///< lossy channel: a received message is erased to silence
  Corrupt,          ///< garbling channel: a heard message flips to noise
  Crash,            ///< crash-stop: k nodes halt at deterministic rounds
  AdversarialWake,  ///< wakeup staggering: per-node deterministic wake delays
};

/// A fault plus its parameters — a value type, compared member-wise.
/// Construct via the factories or `parse_fault`; the default is the
/// faultless `none`.
struct FaultSpec {
  /// Default crash-round window (crash rounds fall in [0, window)).
  static constexpr std::uint32_t kDefaultCrashWindow = 64;

  FaultKind kind = FaultKind::None;
  double probability = 0.0;      ///< drop/corrupt: per-reception event probability
  std::uint32_t seed_split = 0;  ///< drop: optional extra stream split (0 = none)
  std::uint32_t crashes = 0;     ///< crash: number of crash-stop nodes k
  std::uint32_t window = kDefaultCrashWindow;  ///< crash: crash-round window
  std::uint32_t stagger = 0;                   ///< adversarial-wake: max delay W

  [[nodiscard]] static FaultSpec none();
  [[nodiscard]] static FaultSpec drop(double p, std::uint32_t split = 0);
  [[nodiscard]] static FaultSpec corrupt(double p);
  [[nodiscard]] static FaultSpec crash(std::uint32_t k,
                                       std::uint32_t window = kDefaultCrashWindow);
  [[nodiscard]] static FaultSpec adversarial_wake(std::uint32_t stagger);

  /// True when the spec can inject anything at all: `none` and the provably
  /// inert parameterizations (drop:0, corrupt:0, crash:0, adversarial-wake:0)
  /// are inactive, so they run the exact unfaulted code path — including the
  /// engine's fast-path dispatch — and stay bit-identical to no fault.
  [[nodiscard]] bool active() const;

  /// Registry key, round-trippable through parse_fault: the kind token
  /// followed by positional parameters ("drop:0.1", "drop:0.1,7",
  /// "corrupt:0.05", "crash:3", "crash:3,128", "adversarial-wake:16",
  /// bare "none"); optional parameters are omitted at their defaults.
  /// Names never contain spaces, so they travel verbatim on the
  /// shard-report and serve wires.
  [[nodiscard]] std::string name() const;

  /// One-line human description (what the adversary does).
  [[nodiscard]] std::string describe() const;

  /// Canonical 64-bit digest of the spec — a pure function of name() under
  /// the fault registry's own domain seed, folded into sweep identity next
  /// to the workload digest.
  [[nodiscard]] std::uint64_t digest() const;

  friend bool operator==(const FaultSpec& a, const FaultSpec& b) = default;
};

/// A spec plus the per-job seed its dice draw from — what SimulatorOptions
/// carries.  The engine overwrites `seed` per job (job_fault_seed), exactly
/// as it overwrites the coin seed.
struct FaultPlan {
  FaultSpec spec;
  std::uint64_t seed = 0;

  [[nodiscard]] bool active() const { return spec.active(); }

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) = default;
};

/// Per-run fault state the simulator's scalar loop consults: the crash
/// schedule and wake delays are precomputed at reset, the channel dice are
/// pure functions of (seed, round, node) — evaluation order never matters.
class FaultContext {
 public:
  /// Sentinel for "this node never crashes".
  static constexpr std::uint64_t kNeverCrashes = ~std::uint64_t{0};

  FaultContext() = default;

  /// Rebinds the context to one run.  Cheap when the plan is inactive.
  void reset(const FaultPlan& plan, std::size_t nodes);

  [[nodiscard]] bool active() const { return active_; }

  /// Drop die: true when this node's reception this round is erased.
  [[nodiscard]] bool drop_message(std::uint64_t round, std::uint32_t node) const;

  /// Corrupt die: true when this node's reception this round is garbled.
  [[nodiscard]] bool corrupt_message(std::uint64_t round, std::uint32_t node) const;

  /// The global round this node crash-stops at, or kNeverCrashes.
  [[nodiscard]] std::uint64_t crash_round(std::uint32_t node) const {
    return node < crash_round_.size() ? crash_round_[node] : kNeverCrashes;
  }

  /// This node's deterministic wakeup delay in [0, stagger].
  [[nodiscard]] std::uint64_t wake_delay(std::uint32_t node) const;

  /// Upper bound on every wake_delay — the horizon slack a faulted
  /// canonical run must add.
  [[nodiscard]] std::uint64_t max_wake_delay() const {
    return active_ ? plan_.spec.stagger : 0;
  }

 private:
  [[nodiscard]] bool channel_roll(std::uint64_t stream, std::uint64_t round,
                                  std::uint32_t node, double probability) const;

  FaultPlan plan_;
  bool active_ = false;
  std::uint64_t dice_seed_ = 0;  ///< plan seed after the optional drop split
  std::vector<std::uint64_t> crash_round_;
};

/// The registered faults, one default-parameter spec per kind, in registry
/// order.  `parse_fault(f.name()) == f` for every entry (tests/test_fault.cpp).
[[nodiscard]] const std::vector<FaultSpec>& registered_faults();

/// Comma-separated registry keys with parameter placeholders — the list CLI
/// error messages and `arl faults` show.
[[nodiscard]] std::string fault_names();

/// Parses a registry key with positional parameters ("drop:0.1,7").  Throws
/// support::ContractViolation naming the registered faults on an unknown
/// kind, and a one-line reason on a malformed or out-of-range parameter.
[[nodiscard]] FaultSpec parse_fault(std::string_view text);

/// The batch's reserved fault stream: `Rng(batch_seed).split(kFaultStream)`
/// — disjoint by construction from the per-job coin streams (split at the
/// job id) and the configuration stream (engine::sweep_configuration_seed).
[[nodiscard]] std::uint64_t fault_stream_seed(std::uint64_t batch_seed);

/// Fault seed of job `job` under batch master seed `batch_seed`: the fault
/// stream split at the job id, mirroring engine::job_coin_seed.  A pure
/// function of its arguments — thread count, shard shape and engine mode
/// can never change which dice a job rolls.
[[nodiscard]] std::uint64_t job_fault_seed(std::uint64_t batch_seed, std::uint64_t job);

}  // namespace arl::fault
