#include "graph/graph.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arl::graph {

Graph::Builder::Builder(NodeId nodes) : nodes_(nodes), adjacency_(nodes) {}

Graph::Builder& Graph::Builder::add_edge(NodeId u, NodeId v) {
  ARL_EXPECTS(u < nodes_ && v < nodes_, "edge endpoint out of range");
  ARL_EXPECTS(u != v, "self loops are not allowed in a simple graph");
  ARL_EXPECTS(!has_edge(u, v), "parallel edges are not allowed in a simple graph");
  adjacency_[u].push_back(v);
  adjacency_[v].push_back(u);
  return *this;
}

bool Graph::Builder::has_edge(NodeId u, NodeId v) const {
  ARL_EXPECTS(u < nodes_ && v < nodes_, "edge endpoint out of range");
  const auto& shorter =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
  const NodeId needle = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  return std::find(shorter.begin(), shorter.end(), needle) != shorter.end();
}

Graph Graph::Builder::build() && { return Graph(std::move(adjacency_)); }

Graph::Graph(std::vector<std::vector<NodeId>> adjacency) {
  offsets_.reserve(adjacency.size() + 1);
  offsets_.push_back(0);
  std::size_t total = 0;
  for (auto& list : adjacency) {
    std::sort(list.begin(), list.end());
    total += list.size();
    offsets_.push_back(total);
  }
  neighbors_.reserve(total);
  for (const auto& list : adjacency) {
    neighbors_.insert(neighbors_.end(), list.begin(), list.end());
  }
}

Graph Graph::from_edges(NodeId nodes, const std::vector<Edge>& edges) {
  Builder builder(nodes);
  for (const auto& [u, v] : edges) {
    builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

std::span<const NodeId> Graph::neighbors(NodeId v) const {
  ARL_EXPECTS(v < node_count(), "node out of range");
  return {neighbors_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

NodeId Graph::degree(NodeId v) const {
  ARL_EXPECTS(v < node_count(), "node out of range");
  return static_cast<NodeId>(offsets_[v + 1] - offsets_[v]);
}

NodeId Graph::max_degree() const {
  NodeId best = 0;
  for (NodeId v = 0; v < node_count(); ++v) {
    best = std::max(best, degree(v));
  }
  return best;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  const auto span = neighbors(u);
  ARL_EXPECTS(v < node_count(), "node out of range");
  return std::binary_search(span.begin(), span.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(edge_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) {
        result.emplace_back(u, v);
      }
    }
  }
  return result;
}

}  // namespace arl::graph
