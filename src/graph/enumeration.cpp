#include "graph/enumeration.hpp"

#include <vector>

#include "graph/algorithms.hpp"
#include "support/assert.hpp"

namespace arl::graph {

std::uint64_t for_each_connected_graph(NodeId n, const std::function<void(const Graph&)>& visit) {
  ARL_EXPECTS(n >= 1 && n <= 7, "enumeration is exponential; n must be in [1, 7]");
  // Enumerate all subsets of the n(n-1)/2 potential edges.
  std::vector<Edge> slots;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      slots.emplace_back(u, v);
    }
  }
  const std::uint32_t bits = static_cast<std::uint32_t>(slots.size());
  std::uint64_t visited = 0;
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << bits); ++mask) {
    std::vector<Edge> edges;
    for (std::uint32_t b = 0; b < bits; ++b) {
      if ((mask >> b) & 1U) {
        edges.push_back(slots[b]);
      }
    }
    Graph graph = Graph::from_edges(n, edges);
    if (is_connected(graph)) {
      ++visited;
      visit(graph);
    }
  }
  return visited;
}

std::uint64_t connected_graph_count(NodeId n) {
  ARL_EXPECTS(n >= 1 && n <= 6, "table covers n in [1, 6]");
  constexpr std::uint64_t table[] = {1, 1, 4, 38, 728, 26704};
  return table[n - 1];
}

}  // namespace arl::graph
