#pragma once

/// \file enumeration.hpp
/// Exhaustive enumeration of small connected graphs, used by the
/// cross-validation test suites (E1) to sweep every configuration up to a
/// size bound.  Graphs are enumerated as labelled graphs (no isomorphism
/// reduction — configurations attach per-node tags, so labelled is what we
/// want).

#include <cstdint>
#include <functional>

#include "graph/graph.hpp"

namespace arl::graph {

/// Calls `visit` for every labelled connected simple graph on `n` nodes.
/// Requires 1 <= n <= 7 (edge bitmask enumeration: 2^(n(n-1)/2) candidates).
/// Returns the number of graphs visited.
std::uint64_t for_each_connected_graph(NodeId n, const std::function<void(const Graph&)>& visit);

/// Number of labelled connected graphs on n nodes (for test cross-checks):
/// 1, 1, 4, 38, 728, 26704 for n = 1..6 (OEIS A001187).
[[nodiscard]] std::uint64_t connected_graph_count(NodeId n);

}  // namespace arl::graph
