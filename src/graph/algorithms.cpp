#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>

#include "support/assert.hpp"

namespace arl::graph {

std::vector<NodeId> bfs_distances(const Graph& graph, NodeId source) {
  const NodeId n = graph.node_count();
  ARL_EXPECTS(source < n, "source out of range");
  std::vector<NodeId> distance(n, n);  // n == "unreachable"
  std::deque<NodeId> frontier{source};
  distance[source] = 0;
  while (!frontier.empty()) {
    const NodeId v = frontier.front();
    frontier.pop_front();
    for (const NodeId w : graph.neighbors(v)) {
      if (distance[w] == n) {
        distance[w] = distance[v] + 1;
        frontier.push_back(w);
      }
    }
  }
  return distance;
}

std::vector<NodeId> components(const Graph& graph) {
  const NodeId n = graph.node_count();
  std::vector<NodeId> component(n, n);
  NodeId next = 0;
  for (NodeId start = 0; start < n; ++start) {
    if (component[start] != n) {
      continue;
    }
    component[start] = next;
    std::deque<NodeId> frontier{start};
    while (!frontier.empty()) {
      const NodeId v = frontier.front();
      frontier.pop_front();
      for (const NodeId w : graph.neighbors(v)) {
        if (component[w] == n) {
          component[w] = next;
          frontier.push_back(w);
        }
      }
    }
    ++next;
  }
  return component;
}

bool is_connected(const Graph& graph) {
  const NodeId n = graph.node_count();
  if (n == 0) {
    return false;
  }
  const auto distance = bfs_distances(graph, 0);
  return std::all_of(distance.begin(), distance.end(),
                     [n](NodeId d) { return d < n; });
}

NodeId diameter(const Graph& graph) {
  ARL_EXPECTS(is_connected(graph), "diameter of a disconnected graph is undefined");
  NodeId best = 0;
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    const auto distance = bfs_distances(graph, v);
    best = std::max(best, *std::max_element(distance.begin(), distance.end()));
  }
  return best;
}

}  // namespace arl::graph
