#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/algorithms.hpp"
#include "support/assert.hpp"

namespace arl::graph {

Graph path(NodeId n) {
  ARL_EXPECTS(n >= 1, "path needs at least one node");
  Graph::Builder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    builder.add_edge(v, v + 1);
  }
  return std::move(builder).build();
}

Graph cycle(NodeId n) {
  ARL_EXPECTS(n >= 3, "cycle needs at least three nodes");
  Graph::Builder builder(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    builder.add_edge(v, v + 1);
  }
  builder.add_edge(n - 1, 0);
  return std::move(builder).build();
}

Graph complete(NodeId n) {
  ARL_EXPECTS(n >= 1, "complete graph needs at least one node");
  Graph::Builder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      builder.add_edge(u, v);
    }
  }
  return std::move(builder).build();
}

Graph star(NodeId n) {
  ARL_EXPECTS(n >= 1, "star needs at least one node");
  Graph::Builder builder(n);
  for (NodeId v = 1; v < n; ++v) {
    builder.add_edge(0, v);
  }
  return std::move(builder).build();
}

Graph complete_bipartite(NodeId a, NodeId b) {
  ARL_EXPECTS(a >= 1 && b >= 1, "both sides must be non-empty");
  Graph::Builder builder(a + b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) {
      builder.add_edge(u, a + v);
    }
  }
  return std::move(builder).build();
}

Graph grid(NodeId rows, NodeId cols) {
  ARL_EXPECTS(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  Graph::Builder builder(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        builder.add_edge(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows) {
        builder.add_edge(id(r, c), id(r + 1, c));
      }
    }
  }
  return std::move(builder).build();
}

Graph torus(NodeId rows, NodeId cols) {
  ARL_EXPECTS(rows >= 3 && cols >= 3, "torus needs dimensions >= 3 to stay simple");
  Graph::Builder builder(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      builder.add_edge(id(r, c), id(r, (c + 1) % cols));
      builder.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return std::move(builder).build();
}

Graph hypercube(unsigned d) {
  ARL_EXPECTS(d >= 1 && d <= 20, "hypercube dimension out of range");
  const NodeId n = NodeId{1} << d;
  Graph::Builder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    for (unsigned bit = 0; bit < d; ++bit) {
      const NodeId w = v ^ (NodeId{1} << bit);
      if (v < w) {
        builder.add_edge(v, w);
      }
    }
  }
  return std::move(builder).build();
}

Graph binary_tree(NodeId n) {
  ARL_EXPECTS(n >= 1, "tree needs at least one node");
  Graph::Builder builder(n);
  for (NodeId v = 1; v < n; ++v) {
    builder.add_edge(v, (v - 1) / 2);
  }
  return std::move(builder).build();
}

Graph random_tree(NodeId n, support::Rng& rng) {
  ARL_EXPECTS(n >= 1, "tree needs at least one node");
  if (n == 1) {
    return Graph::from_edges(1, {});
  }
  if (n == 2) {
    return Graph::from_edges(2, {{0, 1}});
  }
  // Decode a uniformly random Prüfer sequence of length n-2.
  std::vector<NodeId> prufer(n - 2);
  for (auto& entry : prufer) {
    entry = static_cast<NodeId>(rng.below(n));
  }
  std::vector<NodeId> degree(n, 1);
  for (const NodeId v : prufer) {
    ++degree[v];
  }
  Graph::Builder builder(n);
  NodeId ptr = 0;  // smallest current leaf candidate
  while (degree[ptr] != 1) {
    ++ptr;
  }
  NodeId leaf = ptr;
  for (const NodeId v : prufer) {
    builder.add_edge(leaf, v);
    if (--degree[v] == 1 && v < ptr) {
      leaf = v;  // v became a leaf smaller than the scan pointer
    } else {
      ++ptr;
      while (degree[ptr] != 1) {
        ++ptr;
      }
      leaf = ptr;
    }
  }
  // The two remaining degree-1 nodes close the tree; one of them is `leaf`.
  NodeId last = n - 1;
  builder.add_edge(leaf, last);
  return std::move(builder).build();
}

Graph gnp_connected(NodeId n, double p, support::Rng& rng) {
  ARL_EXPECTS(n >= 1, "graph needs at least one node");
  ARL_EXPECTS(p >= 0.0 && p <= 1.0, "probability out of range");
  Graph::Builder builder(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) {
        builder.add_edge(u, v);
      }
    }
  }
  // Stitch components together with uniformly random cross edges so that the
  // sample is always usable as a radio network.
  for (;;) {
    Graph candidate = std::move(builder).build();
    const auto component = components(candidate);
    const NodeId parts = *std::max_element(component.begin(), component.end()) + 1;
    if (parts == 1) {
      return candidate;
    }
    builder = Graph::Builder(n);
    for (const auto& [u, v] : candidate.edges()) {
      builder.add_edge(u, v);
    }
    // Connect component 0 to one random node of every other component.
    std::vector<NodeId> anchor_of(parts, n);
    std::vector<NodeId> order(n);
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    for (const NodeId v : order) {
      if (anchor_of[component[v]] == n) {
        anchor_of[component[v]] = v;
      }
    }
    for (NodeId part = 1; part < parts; ++part) {
      if (!builder.has_edge(anchor_of[0], anchor_of[part])) {
        builder.add_edge(anchor_of[0], anchor_of[part]);
      }
    }
  }
}

Graph barbell(NodeId k, NodeId bridge) {
  ARL_EXPECTS(k >= 1, "cliques need at least one node");
  ARL_EXPECTS(bridge >= 1, "bridge needs at least one edge");
  const NodeId n = 2 * k + (bridge - 1);
  Graph::Builder builder(n);
  auto clique = [&](NodeId base) {
    for (NodeId u = 0; u < k; ++u) {
      for (NodeId v = u + 1; v < k; ++v) {
        builder.add_edge(base + u, base + v);
      }
    }
  };
  clique(0);
  clique(k + (bridge - 1));
  // Path of `bridge` edges from node k-1 through bridge-1 intermediate nodes
  // to the first node of the second clique.
  NodeId prev = k - 1;
  for (NodeId i = 0; i < bridge - 1; ++i) {
    const NodeId mid = k + i;
    builder.add_edge(prev, mid);
    prev = mid;
  }
  builder.add_edge(prev, k + (bridge - 1));
  return std::move(builder).build();
}

Graph caterpillar(NodeId spine, NodeId legs) {
  ARL_EXPECTS(spine >= 1, "caterpillar needs a spine");
  const NodeId n = spine + spine * legs;
  Graph::Builder builder(n);
  for (NodeId s = 0; s + 1 < spine; ++s) {
    builder.add_edge(s, s + 1);
  }
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId leg = 0; leg < legs; ++leg) {
      builder.add_edge(s, spine + s * legs + leg);
    }
  }
  return std::move(builder).build();
}

}  // namespace arl::graph
