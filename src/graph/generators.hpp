#pragma once

/// \file generators.hpp
/// Standard graph families used as radio network topologies in the test and
/// benchmark workloads.  All generators produce connected simple graphs and
/// are deterministic given their arguments (random generators take an Rng).

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace arl::graph {

/// Path a_0 - a_1 - ... - a_{n-1}.  Requires n >= 1.
[[nodiscard]] Graph path(NodeId n);

/// Cycle on n nodes.  Requires n >= 3.
[[nodiscard]] Graph cycle(NodeId n);

/// Complete graph K_n (the single-hop radio network).  Requires n >= 1.
[[nodiscard]] Graph complete(NodeId n);

/// Star with one hub (node 0) and n-1 leaves.  Requires n >= 1.
[[nodiscard]] Graph star(NodeId n);

/// Complete bipartite graph K_{a,b}; nodes 0..a-1 on the left.  Requires a, b >= 1.
[[nodiscard]] Graph complete_bipartite(NodeId a, NodeId b);

/// rows x cols grid (4-neighbour mesh).  Requires rows, cols >= 1.
[[nodiscard]] Graph grid(NodeId rows, NodeId cols);

/// rows x cols torus (wrap-around mesh).  Requires rows, cols >= 3.
[[nodiscard]] Graph torus(NodeId rows, NodeId cols);

/// d-dimensional hypercube (2^d nodes).  Requires 1 <= d <= 20.
[[nodiscard]] Graph hypercube(unsigned d);

/// Complete binary tree with n nodes (heap numbering).  Requires n >= 1.
[[nodiscard]] Graph binary_tree(NodeId n);

/// Uniformly random labelled tree on n nodes (via Prüfer sequence).  Requires n >= 1.
[[nodiscard]] Graph random_tree(NodeId n, support::Rng& rng);

/// Erdős–Rényi G(n, p) conditioned on connectivity: samples edges with
/// probability p, then links disconnected components with random extra edges
/// so the result is always connected.  Requires n >= 1.
[[nodiscard]] Graph gnp_connected(NodeId n, double p, support::Rng& rng);

/// Two cliques of size k joined by a path of length bridge (>= 1 edge).
/// Requires k >= 1.  A classic "two dense regions, thin corridor" topology.
[[nodiscard]] Graph barbell(NodeId k, NodeId bridge);

/// Caterpillar: a spine path of length `spine` with `legs` pendant leaves
/// attached to every spine node.  Requires spine >= 1.
[[nodiscard]] Graph caterpillar(NodeId spine, NodeId legs);

}  // namespace arl::graph
