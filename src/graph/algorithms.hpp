#pragma once

/// \file algorithms.hpp
/// Basic graph algorithms used for validation and workload metadata.

#include <vector>

#include "graph/graph.hpp"

namespace arl::graph {

/// BFS distances from `source`; unreachable nodes get distance == n (sentinel).
[[nodiscard]] std::vector<NodeId> bfs_distances(const Graph& graph, NodeId source);

/// Connected-component index per node (component ids are 0-based, assigned in
/// order of the smallest node id in each component).
[[nodiscard]] std::vector<NodeId> components(const Graph& graph);

/// True if the graph is connected (the empty graph is not).
[[nodiscard]] bool is_connected(const Graph& graph);

/// Exact diameter via all-pairs BFS.  Requires a connected graph.
[[nodiscard]] NodeId diameter(const Graph& graph);

}  // namespace arl::graph
