#pragma once

/// \file graph.hpp
/// Simple undirected graph with compact adjacency storage.
///
/// Radio networks in the paper are simple undirected connected graphs; this
/// type stores exactly that.  Construction goes through `Builder` (or an edge
/// list), which validates simplicity (no self loops, no parallel edges).
/// Neighbour lists are sorted, enabling O(log Δ) adjacency queries and
/// deterministic iteration order — determinism matters because `Classifier`
/// fixes "an arbitrary ordering of the vertices" and all our algorithms must
/// replay identically.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace arl::graph {

/// Index of a node in a graph; nodes are 0..n-1.
using NodeId = std::uint32_t;

/// An undirected edge as an (unordered) pair of node ids.
using Edge = std::pair<NodeId, NodeId>;

/// Immutable simple undirected graph.
class Graph {
 public:
  /// Incremental graph builder.
  class Builder {
   public:
    /// Starts a builder for `nodes` isolated vertices.
    explicit Builder(NodeId nodes);

    /// Adds the undirected edge {u, v}. Requires u != v, both in range, and
    /// the edge not already present.
    Builder& add_edge(NodeId u, NodeId v);

    /// True if {u, v} has been added.
    [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

    /// Finalizes into an immutable Graph.
    [[nodiscard]] Graph build() &&;

   private:
    NodeId nodes_;
    std::vector<std::vector<NodeId>> adjacency_;
  };

  /// Empty graph (0 nodes).
  Graph() = default;

  /// Builds from an explicit edge list over `nodes` vertices.
  static Graph from_edges(NodeId nodes, const std::vector<Edge>& edges);

  /// Number of nodes.
  [[nodiscard]] NodeId node_count() const {
    return static_cast<NodeId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t edge_count() const { return neighbors_.size() / 2; }

  /// Sorted neighbours of `v`.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const;

  /// Degree of `v`.
  [[nodiscard]] NodeId degree(NodeId v) const;

  /// Maximum degree Δ (0 for the empty graph).
  [[nodiscard]] NodeId max_degree() const;

  /// True if {u, v} is an edge (O(log Δ)).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  /// All edges with u < v, lexicographically sorted.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Structural equality (same node count and edge set).
  friend bool operator==(const Graph& a, const Graph& b) = default;

 private:
  explicit Graph(std::vector<std::vector<NodeId>> adjacency);

  // CSR storage: neighbours of v are neighbors_[offsets_[v] .. offsets_[v+1]).
  std::vector<std::size_t> offsets_;
  std::vector<NodeId> neighbors_;
};

}  // namespace arl::graph
