#pragma once

/// \file schedule.hpp
/// The canonical DRIP's hard-coded knowledge: the list sequence L_j
/// (paper §3.3.1) compiled from a Classifier run.
///
/// For a configuration G, iteration j-1 of Classifier yields the list L_j of
/// per-class signatures (old class, label); the canonical DRIP installs the
/// same sequence at every node.  During execution, a node derives its
/// transmission block for phase P_j by matching its own observed phase
/// history against L_j — anonymously, since every node carries the same
/// lists.  Classifier's exit makes L_{T+1} = "terminate", encoded here by the
/// phases simply ending.  When the verdict is "Yes", the leader's signature
/// (the pair that would match it in the never-executed phase P_{T+1}) is
/// embedded so each node can self-decide leadership from its own history.

#include <cstdint>
#include <memory>
#include <vector>

#include "config/configuration.hpp"
#include "core/classifier.hpp"
#include "core/label.hpp"

namespace arl::core {

/// One entry of a list L_j: the signature of one equivalence class.
struct PhaseEntry {
  ClassId old_class = 0;  ///< block the class representative used in the previous phase
  Label label;            ///< history signature of the class during the previous phase
};

/// Specification of one phase P_j.
struct PhaseSpec {
  /// Number of transmission blocks (= numClasses_{G,j}).
  ClassId num_classes = 0;

  /// The list L_j (size == num_classes).
  std::vector<PhaseEntry> entries;
};

/// Complete canonical-DRIP schedule for one configuration.
struct CanonicalSchedule {
  config::Tag sigma = 0;          ///< span σ of the configuration
  radio::ChannelModel model =
      radio::ChannelModel::CollisionDetection;  ///< feedback the labels assume
  std::vector<PhaseSpec> phases;  ///< phases[j-1] = P_j, j = 1..T

  bool feasible = false;       ///< Classifier verdict
  ClassId leader_old_class = 0;  ///< leader signature: block in phase P_T...
  Label leader_label;            ///< ...and observed label of phase P_T

  /// Rounds per transmission block (2σ+1).
  [[nodiscard]] std::uint64_t block_length() const { return 2ULL * sigma + 1; }

  /// Length of phase P_{j+1} in rounds: numClasses·(2σ+1) + σ.
  [[nodiscard]] std::uint64_t phase_length(std::size_t phase_index) const;

  /// Local rounds from wakeup to termination inclusive (Lemma 3.10 gives
  /// O(n²σ)); every node terminates in exactly this local round.
  [[nodiscard]] std::uint64_t total_rounds() const;

  /// History window sufficient for the canonical program (longest phase + margin).
  [[nodiscard]] std::size_t suggested_window() const;
};

/// Compiles the schedule from a Classifier run on the same configuration.
[[nodiscard]] CanonicalSchedule build_schedule(const config::Configuration& configuration,
                                               const ClassifierResult& classification);

/// Convenience: classify then compile.
[[nodiscard]] std::shared_ptr<const CanonicalSchedule> make_schedule(
    const config::Configuration& configuration,
    radio::ChannelModel model = radio::ChannelModel::CollisionDetection);

}  // namespace arl::core
