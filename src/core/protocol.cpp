#include "core/protocol.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <memory>
#include <numeric>
#include <utility>

#include "baselines/binary_search.hpp"
#include "baselines/randomized.hpp"
#include "baselines/tree_split.hpp"
#include "core/fast_classifier.hpp"
#include "obs/metrics.hpp"
#include "support/assert.hpp"

namespace arl::core {

const char* to_string(Disposition disposition) {
  switch (disposition) {
    case Disposition::NotSimulated:
      return "not simulated";
    case Disposition::Elected:
      return "elected";
    case Disposition::NoLeader:
      return "no leader";
    case Disposition::Failed:
      return "failed";
    case Disposition::DetectedFault:
      return "detected fault";
  }
  return "?";
}

namespace {

/// Fault events actually injected into a run — the evidence that lets a
/// verification failure be attributed to the adversary (DetectedFault)
/// rather than the protocol (Failed).
std::uint64_t injected_events(const radio::RunStats& stats) {
  return stats.injected_drops + stats.injected_corruptions + stats.injected_crashes +
         stats.delayed_wakeups;
}

}  // namespace

namespace {

/// Bare registry key of a kind (without parameter suffix).
const char* kind_key(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::Canonical:
      return "canonical";
    case ProtocolKind::ClassifyOnly:
      return "classify";
    case ProtocolKind::BinarySearch:
      return "binary-search";
    case ProtocolKind::TreeSplit:
      return "tree-split";
    case ProtocolKind::Randomized:
      return "randomized";
  }
  return "?";
}

/// Smallest label width whose universe [0, 2^bits) holds labels 0..n-1.
unsigned auto_label_bits(graph::NodeId n) {
  unsigned bits = 1;
  while ((std::uint64_t{1} << bits) < n) {
    ++bits;
  }
  return bits;
}

/// Labels from wakeup order: rank in the stable (tag, node id) order, so the
/// earliest-waking node gets label 0 (and wins the min-label protocols) —
/// the wakeup asymmetry the canonical protocol exploits becomes the label
/// asymmetry the baselines assume.
std::vector<std::uint64_t> wakeup_order_labels(const config::Configuration& configuration) {
  const graph::NodeId n = configuration.size();
  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), graph::NodeId{0});
  std::stable_sort(order.begin(), order.end(), [&](graph::NodeId a, graph::NodeId b) {
    return configuration.tags()[a] < configuration.tags()[b];
  });
  std::vector<std::uint64_t> labels(n);
  for (graph::NodeId rank = 0; rank < n; ++rank) {
    labels[order[rank]] = rank;
  }
  return labels;
}

/// Classifies `configuration` (and, for simulating runs, compiles the
/// canonical schedule) through the scratch's schedule cache when one is
/// attached: a hit reuses the compiled artifacts, a miss — or a hit holding
/// only the classification when a schedule is now needed — compiles the
/// missing piece and stores the result back.  Both artifacts are pure
/// functions of the key, so the returned entry is bit-identical to a fresh
/// compile (asserted by tests/test_schedule_cache.cpp).
std::shared_ptr<const CompiledConfiguration> classify_and_compile(
    const config::Configuration& configuration, const ElectionOptions& options,
    bool need_schedule, ScheduleCacheHandle& cache) {
  std::shared_ptr<const CompiledConfiguration> compiled;
  {
    const obs::PhaseTimer span(obs::Phase::CacheLookup);
    compiled = cache.lookup(configuration, options.channel_model, options.use_fast_classifier);
  }
  if (compiled != nullptr && (!need_schedule || compiled->schedule != nullptr)) {
    return compiled;
  }

  CompiledConfiguration fresh;
  if (compiled != nullptr) {
    fresh.classification = compiled->classification;  // upgrade: only the schedule is missing
  } else {
    const obs::PhaseTimer span(obs::Phase::Classify);
    if (options.use_fast_classifier) {
      fresh.classification = FastClassifier(options.channel_model).run(configuration);
    } else {
      fresh.classification = Classifier(options.channel_model).run(configuration);
    }
  }
  if (need_schedule) {
    const obs::PhaseTimer span(obs::Phase::ScheduleCompile);
    fresh.schedule = std::make_shared<const CanonicalSchedule>(
        build_schedule(configuration, fresh.classification));
  }
  return cache.store(configuration, options.channel_model, options.use_fast_classifier,
                     std::move(fresh));
}

/// The canonical pipeline (previously the body of elect()): classify,
/// compile the schedule, execute the canonical DRIP, verify.
ElectionReport run_canonical(const config::Configuration& configuration,
                             const ElectionOptions& options, bool simulate,
                             ElectionScratch& scratch) {
  ElectionReport report;
  if (scratch.schedule_cache != nullptr) {
    const std::shared_ptr<const CompiledConfiguration> compiled = classify_and_compile(
        configuration, options, /*need_schedule=*/simulate, *scratch.schedule_cache);
    report.classification = compiled->classification;
    report.schedule = compiled->schedule;  // null for classify-only entries
  } else {
    // Uncached: classify straight into the report (no artifact copy — this
    // is elect()'s default path and large uncached sweeps run through it).
    {
      const obs::PhaseTimer span(obs::Phase::Classify);
      if (options.use_fast_classifier) {
        report.classification = FastClassifier(options.channel_model).run(configuration);
      } else {
        report.classification = Classifier(options.channel_model).run(configuration);
      }
    }
    if (simulate) {
      const obs::PhaseTimer span(obs::Phase::ScheduleCompile);
      report.schedule = std::make_shared<const CanonicalSchedule>(
          build_schedule(configuration, report.classification));
    }
  }
  report.feasible = report.classification.feasible();

  if (!simulate) {
    report.schedule = nullptr;  // classify-only reports never carry one
    report.valid = true;        // nothing further to verify (and no schedule needed)
    report.disposition = Disposition::NotSimulated;
    return report;
  }

  // Under an active fault plan the schedule's lemmas no longer bind: the
  // drip runs in robust mode (terminate un-elected on an inexplicable
  // observation instead of a contract violation), and the horizon gains the
  // adversary's maximum wakeup stagger so delayed runs are not truncated.
  const bool faulted = options.simulator.fault.active();
  const CanonicalDrip drip(report.schedule,
                           faulted ? MismatchPolicy::Robust : MismatchPolicy::Strict);
  radio::SimulatorOptions simulator_options = options.simulator;
  simulator_options.channel_model = report.schedule->model;
  const config::Tag max_tag =
      *std::max_element(configuration.tags().begin(), configuration.tags().end());
  const std::uint64_t needed_horizon = max_tag + report.schedule->total_rounds() + 2 +
                                       options.simulator.fault.spec.stagger;
  simulator_options.max_rounds = static_cast<config::Round>(
      std::max<std::uint64_t>(simulator_options.max_rounds, needed_horizon));

  const radio::RunResult run = [&] {
    const obs::PhaseTimer span(obs::Phase::Simulate);
    return radio::simulate(configuration, drip, simulator_options, scratch.simulator);
  }();
  report.simulated = true;
  report.global_rounds = run.rounds_executed;
  report.local_rounds = report.schedule->total_rounds();
  report.stats = run.stats;

  // Verification: termination discipline + decision correctness.
  bool valid = run.all_terminated;
  for (const auto& node : run.nodes) {
    valid = valid && node.terminated && node.done_round == report.schedule->total_rounds() &&
            !node.forced_wake;  // Lemma 3.6: patient ⇒ all wakeups spontaneous
  }
  const auto leaders = run.leaders();
  if (report.feasible) {
    valid = valid && leaders.size() == 1 && leaders.front() == report.classification.leader;
    if (leaders.size() == 1) {
      report.leader = leaders.front();
    }
  } else {
    valid = valid && leaders.empty();
  }
  report.valid = valid;
  if (!valid) {
    // A failure with injected fault events on record is the adversary's
    // doing; without any, the fault plan was a bystander and the failure is
    // the protocol's (exactly as in a faultless run).
    report.disposition = faulted && injected_events(run.stats) > 0 ? Disposition::DetectedFault
                                                                  : Disposition::Failed;
  } else {
    report.disposition = report.feasible ? Disposition::Elected : Disposition::NoLeader;
  }
  return report;
}

/// Horizon guard for a baseline run: generous enough that a conforming run
/// never truncates, tight enough that a diverging one (a labeled protocol on
/// a topology that violates its single-hop assumption, say) fails in bounded
/// time instead of burning the simulator's default million-round horizon.
std::uint64_t baseline_horizon(const ProtocolSpec& spec, graph::NodeId n, config::Tag max_tag,
                               unsigned label_bits) {
  switch (spec.kind) {
    case ProtocolKind::BinarySearch:
      return max_tag + label_bits + 2u;  // exactly L+1 local rounds
    case ProtocolKind::TreeSplit:
      // The DFS visits O(n·L) prefix groups at three rounds per slot; the
      // (2n+2)(L+1) slot bound covers duplicate-label failures too.
      return max_tag + 3ull * (2ull * n + 2) * (label_bits + 1) + 4;
    case ProtocolKind::Randomized:
      return max_tag + 2ull * (spec.max_slots + 1) + 4;  // two rounds per slot
    default:
      ARL_EXPECTS(false, "baseline_horizon called with a non-baseline spec");
      return 0;
  }
}

/// The shared labeled/randomized harness: labels from wakeup order, one
/// Drip, one simulation, uniform verification (termination + exactly one
/// leader).
ElectionReport run_baseline(const config::Configuration& configuration, const ProtocolSpec& spec,
                            const ElectionOptions& options, ElectionScratch& scratch) {
  ElectionReport report;
  const graph::NodeId n = configuration.size();
  const unsigned label_bits =
      spec.label_bits != 0 ? spec.label_bits : auto_label_bits(std::max<graph::NodeId>(n, 2));

  // An explicit label width too narrow for the wakeup-order labels 0..n-1 is
  // a per-job failure, not a batch-killing exception: report it as Failed so
  // the other jobs of a mixed-protocol sweep survive.  (Caller-supplied
  // labels are still contract-checked by the Drip and throw.)
  if (spec.uses_labels() && options.simulator.labels.empty() &&
      label_bits < auto_label_bits(std::max<graph::NodeId>(n, 2))) {
    report.disposition = Disposition::Failed;
    return report;
  }

  radio::SimulatorOptions simulator_options = options.simulator;
  simulator_options.channel_model = options.channel_model;
  if (spec.uses_labels() && simulator_options.labels.empty()) {
    simulator_options.labels = wakeup_order_labels(configuration);
  }
  const config::Tag max_tag =
      *std::max_element(configuration.tags().begin(), configuration.tags().end());
  // The protocol-derived horizon replaces the simulator's generic default
  // (so huge conforming runs are never truncated and diverging out-of-model
  // runs fail in bounded time); any other caller-set max_rounds is honoured
  // as an explicit cap, with the horizon still bounding it from above.
  // (Setting max_rounds to exactly the SimulatorOptions default is
  // indistinguishable from leaving it unset and is treated as unset.)
  const std::uint64_t horizon = baseline_horizon(spec, n, max_tag, label_bits) +
                                options.simulator.fault.spec.stagger;
  const bool caller_set_cap =
      simulator_options.max_rounds != radio::SimulatorOptions{}.max_rounds;
  const std::uint64_t caller_cap = caller_set_cap ? simulator_options.max_rounds : horizon;
  simulator_options.max_rounds = static_cast<config::Round>(
      std::min({horizon, caller_cap,
                static_cast<std::uint64_t>(std::numeric_limits<config::Round>::max())}));

  std::unique_ptr<radio::Drip> drip;
  switch (spec.kind) {
    case ProtocolKind::BinarySearch:
      drip = std::make_unique<baselines::BinarySearchElection>(label_bits);
      break;
    case ProtocolKind::TreeSplit:
      drip = std::make_unique<baselines::TreeSplitElection>(label_bits);
      break;
    case ProtocolKind::Randomized:
      drip = std::make_unique<baselines::RandomizedElection>(spec.max_slots);
      break;
    default:
      ARL_EXPECTS(false, "run_baseline called with a non-baseline spec");
  }

  const radio::RunResult run = [&] {
    const obs::PhaseTimer span(obs::Phase::Simulate);
    return radio::simulate(configuration, *drip, simulator_options, scratch.simulator);
  }();
  report.simulated = true;
  report.global_rounds = run.rounds_executed;
  report.stats = run.stats;

  bool terminated = run.all_terminated;
  std::uint64_t slowest = 0;
  for (const auto& node : run.nodes) {
    terminated = terminated && node.terminated;
    slowest = std::max<std::uint64_t>(slowest, node.done_round);
  }
  report.local_rounds = slowest;

  const auto leaders = run.leaders();
  if (terminated && leaders.size() == 1) {
    report.leader = leaders.front();  // a leader from a truncated run is junk
  }
  report.valid = terminated && leaders.size() == 1;
  if (report.valid) {
    report.disposition = Disposition::Elected;
  } else if (options.simulator.fault.active() && injected_events(run.stats) > 0) {
    // The failure has injected fault events on record: attributed to the
    // adversary, not the protocol.
    report.disposition = Disposition::DetectedFault;
  } else if (terminated && leaders.empty()) {
    // Clean termination with no winner — a detected election failure (slot
    // guard exhausted, duplicate labels), distinct from a diverging run
    // truncated by the horizon.
    report.disposition = Disposition::NoLeader;
  } else {
    report.disposition = Disposition::Failed;
  }
  return report;
}

}  // namespace

std::string ProtocolSpec::name() const {
  std::string key = kind_key(kind);
  if (uses_labels() && label_bits != 0) {
    key += ':' + std::to_string(label_bits);
  } else if (kind == ProtocolKind::Randomized && max_slots != kDefaultMaxSlots) {
    key += ':' + std::to_string(max_slots);
  }
  return key;
}

std::string ProtocolSpec::describe() const {
  switch (kind) {
    case ProtocolKind::Canonical:
      return "canonical — anonymous deterministic DRIP: classify, compile the "
             "schedule, simulate, verify (the paper's Theorem 3.15)";
    case ProtocolKind::ClassifyOnly:
      return "classify — feasibility verdict only, no simulation";
    case ProtocolKind::BinarySearch:
      return "binary-search — labeled deterministic bit-filter election, L+1 rounds "
             "(single-hop, simultaneous wakeup; labels " +
             std::string(label_bits == 0 ? "auto-sized" : "in [0, 2^" +
                                                              std::to_string(label_bits) + ")") +
             ")";
    case ProtocolKind::TreeSplit:
      return "tree-split — labeled deterministic DFS tree-splitting election "
             "(single-hop, simultaneous wakeup; labels " +
             std::string(label_bits == 0 ? "auto-sized" : "in [0, 2^" +
                                                              std::to_string(label_bits) + ")") +
             ")";
    case ProtocolKind::Randomized:
      return "randomized — anonymous randomized decay election, private coins, "
             "slot guard " +
             std::to_string(max_slots);
  }
  return "?";
}

const std::vector<ProtocolSpec>& registered_protocols() {
  static const std::vector<ProtocolSpec> registry = {
      ProtocolSpec::canonical(), ProtocolSpec::classify_only(), ProtocolSpec::binary_search(),
      ProtocolSpec::tree_split(), ProtocolSpec::randomized()};
  return registry;
}

std::string protocol_names() {
  std::string names;
  for (const ProtocolSpec& spec : registered_protocols()) {
    if (!names.empty()) {
      names += ", ";
    }
    names += spec.name();
    if (spec.uses_labels()) {
      names += "[:BITS]";
    } else if (spec.kind == ProtocolKind::Randomized) {
      names += "[:SLOTS]";
    }
  }
  return names;
}

ProtocolSpec parse_protocol(std::string_view text) {
  const std::size_t colon = text.find(':');
  const std::string_view key = text.substr(0, colon);
  const std::string_view param =
      colon == std::string_view::npos ? std::string_view{} : text.substr(colon + 1);

  // Plain ContractViolations (not ARL_EXPECTS): these messages are shown
  // verbatim by the CLI, so they must read as usage errors, not assertions.
  ProtocolSpec spec;
  bool found = false;
  for (const ProtocolSpec& candidate : registered_protocols()) {
    if (key == kind_key(candidate.kind)) {
      spec = candidate;
      found = true;
      break;
    }
  }
  if (!found) {
    throw support::ContractViolation("unknown protocol '" + std::string(text) +
                                     "'; registered protocols are: " + protocol_names());
  }

  if (colon == std::string_view::npos) {
    return spec;
  }
  char* end = nullptr;
  const std::string param_string(param);
  const unsigned long long value = std::strtoull(param_string.c_str(), &end, 10);
  if (param_string.empty() || end != param_string.c_str() + param_string.size()) {
    throw support::ContractViolation("malformed parameter in protocol '" + std::string(text) +
                                     "'");
  }
  switch (spec.kind) {
    case ProtocolKind::BinarySearch:
    case ProtocolKind::TreeSplit:
      if (value > 63) {
        throw support::ContractViolation("label width of '" + std::string(text) +
                                         "' must be in [0, 63]");
      }
      spec.label_bits = static_cast<unsigned>(value);
      break;
    case ProtocolKind::Randomized:
      if (value < 1 || value > (1u << 30)) {
        throw support::ContractViolation("slot guard of '" + std::string(text) +
                                         "' must be in [1, 2^30]");
      }
      spec.max_slots = static_cast<std::uint32_t>(value);
      break;
    default:
      throw support::ContractViolation("protocol '" + std::string(key) + "' takes no parameter");
  }
  return spec;
}

ElectionReport run_protocol(const config::Configuration& configuration, const ProtocolSpec& spec,
                            const ElectionOptions& options) {
  ElectionScratch scratch;
  return run_protocol(configuration, spec, options, scratch);
}

ElectionReport run_protocol(const config::Configuration& configuration, const ProtocolSpec& spec,
                            const ElectionOptions& options, ElectionScratch& scratch) {
  ElectionReport report;
  switch (spec.kind) {
    case ProtocolKind::Canonical:
      report = run_canonical(configuration, options, /*simulate=*/true, scratch);
      break;
    case ProtocolKind::ClassifyOnly:
      report = run_canonical(configuration, options, /*simulate=*/false, scratch);
      break;
    case ProtocolKind::BinarySearch:
    case ProtocolKind::TreeSplit:
    case ProtocolKind::Randomized:
      report = run_baseline(configuration, spec, options, scratch);
      break;
  }
  report.protocol = spec.name();
  return report;
}

}  // namespace arl::core
