#pragma once

/// \file label.hpp
/// Node labels used by the Classifier algorithm (paper §3.1).
///
/// During each Partitioner iteration, node v receives a label: the sorted
/// concatenation of triples (a, b, c) where `a` is the equivalence class of a
/// neighbour w (the transmission block in which w transmits), `b` = σ+1+t_w-t_v
/// is the local round within that block where v hears w, and `c` records
/// whether exactly one (1) or several (∗) neighbours land on that (a, b) slot.
/// Triples are ordered by the paper's ≺hist (Definition 3.1).

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

namespace arl::core {

/// Equivalence class number; 1-based as in the paper (0 = invalid).
using ClassId = std::uint32_t;

/// One (a, b, c) triple of a node label.
struct LabelTriple {
  ClassId cls = 0;          ///< a: the neighbour's class / transmission block
  std::uint32_t round = 0;  ///< b: σ+1+t_w-t_v, in [1, 2σ+1]
  bool star = false;        ///< c: false = exactly one transmitter, true = (∗)

  /// Lexicographic (cls, round, star) — exactly the paper's ≺hist, since
  /// c = 1 (star = false) precedes c = ∗ (star = true).
  friend auto operator<=>(const LabelTriple&, const LabelTriple&) = default;
};

/// A node label: triples sorted by ≺hist.  The empty label is the paper's
/// `null`.
using Label = std::vector<LabelTriple>;

/// Renders a label as "(a,b,1)(a,b,*)..." ("null" when empty).
[[nodiscard]] std::string format_label(const Label& label);

}  // namespace arl::core
