#include "core/label.hpp"

namespace arl::core {

std::string format_label(const Label& label) {
  if (label.empty()) {
    return "null";
  }
  std::string out;
  for (const auto& triple : label) {
    out += '(';
    out += std::to_string(triple.cls);
    out += ',';
    out += std::to_string(triple.round);
    out += ',';
    out += triple.star ? "*" : "1";
    out += ')';
  }
  return out;
}

}  // namespace arl::core
