#include "core/patient.hpp"

#include "support/assert.hpp"

namespace arl::core {

namespace {

/// Per-node program of the patient wrapper.
class PatientProgram final : public radio::NodeProgram {
 public:
  PatientProgram(std::unique_ptr<radio::NodeProgram> inner, config::Tag sigma,
                 std::optional<std::size_t> inner_window)
      : inner_(std::move(inner)), sigma_(sigma), inner_window_(inner_window) {}

  radio::Action decide(config::Round local_round, const radio::HistoryView& history) override {
    if (terminated_) {
      return radio::Action::terminate();
    }
    const std::size_t newest = local_round - 1;  // index of H[local_round - 1]
    if (!started_) {
      // Waiting window: local rounds 1..s_w are pure listening.  The inner
      // simulation starts once a message arrives (forced-wakeup simulation,
      // s_w = rcv_w) or the window times out (spontaneous simulation,
      // s_w = σ); in both cases the inner H[0] is the outer H[s_w].
      const radio::HistoryEntry last = history.entry(newest);
      if (last.is_message() || local_round == static_cast<config::Round>(sigma_) + 1) {
        started_ = true;
        shift_ = newest;  // s_w
        inner_history_.push_back(last);
      } else {
        return radio::Action::listen();
      }
    } else {
      inner_history_.push_back(history.entry(newest));
      if (inner_window_ && inner_history_.size() > 2 * *inner_window_) {
        const std::size_t evict = inner_history_.size() - *inner_window_;
        inner_history_.erase(inner_history_.begin(),
                             inner_history_.begin() + static_cast<std::ptrdiff_t>(evict));
        inner_dropped_ += evict;
      }
    }

    const auto inner_round = static_cast<config::Round>(local_round - shift_);
    const radio::HistoryView inner_view(inner_history_, inner_dropped_);
    ARL_ASSERT(inner_view.length() == inner_round, "inner history out of sync");
    const radio::Action action = inner_->decide(inner_round, inner_view);
    if (action.is_terminate()) {
      terminated_ = true;
    }
    return action;
  }

  [[nodiscard]] bool elected() const override { return inner_->elected(); }

 private:
  std::unique_ptr<radio::NodeProgram> inner_;
  config::Tag sigma_;
  std::optional<std::size_t> inner_window_;
  bool started_ = false;
  bool terminated_ = false;
  std::size_t shift_ = 0;  ///< s_w: inner round j == outer round s_w + j
  radio::History inner_history_;
  std::size_t inner_dropped_ = 0;
};

}  // namespace

PatientWrapper::PatientWrapper(std::shared_ptr<const radio::Drip> inner, config::Tag sigma)
    : inner_(std::move(inner)), sigma_(sigma) {
  ARL_EXPECTS(inner_ != nullptr, "inner protocol required");
}

std::unique_ptr<radio::NodeProgram> PatientWrapper::instantiate(
    const radio::NodeEnv& env) const {
  return std::make_unique<PatientProgram>(inner_->instantiate(env), sigma_,
                                          inner_->history_window());
}

std::string PatientWrapper::name() const { return "patient(" + inner_->name() + ")"; }

std::optional<std::size_t> PatientWrapper::history_window() const {
  // The wrapper only reads the newest outer entry; the inner protocol works
  // on the wrapper's private shifted copy.
  return std::size_t{4};
}

}  // namespace arl::core
