#pragma once

/// \file election.hpp
/// End-to-end leader election: classify → compile schedule → execute the
/// canonical DRIP on the radio simulator → verify the outcome.
///
/// This is the library's main entry point (Theorem 3.15/3.17): for a feasible
/// configuration the report carries the elected leader, the election time in
/// rounds (O(n²σ) by Lemma 3.10) and the verification that exactly the
/// Classifier-predicted node elected itself; for an infeasible one it
/// documents that the canonical protocol — provably the best symmetry
/// breaker — leaves every node with a non-unique history and no leader.

#include <memory>
#include <optional>
#include <string>

#include "config/configuration.hpp"
#include "core/canonical_drip.hpp"
#include "core/classifier.hpp"
#include "core/schedule.hpp"
#include "radio/simulator.hpp"

namespace arl::core {

/// How an election run ended.  Every protocol — canonical, classify-only,
/// labeled, randomized — reports one of these, so a no-leader outcome (an
/// infeasible configuration, or a randomized run that exhausted its slot
/// guard) is a representable result rather than an unspoken invariant.
enum class Disposition : std::uint8_t {
  NotSimulated,  ///< classify-only: feasibility decided, no election attempted

  Elected,       ///< exactly one leader, verification passed

  /// Terminated everywhere with no leader.  For the canonical protocol this
  /// is the correct outcome on an infeasible configuration (valid stays
  /// true); for a baseline it is a cleanly detected election failure — slot
  /// guard exhausted, duplicate labels — and valid is false.
  NoLeader,

  /// Verification failed: multiple leaders, non-termination (horizon guard
  /// fired), or the run could not be set up (label universe too small).
  Failed,

  /// Verification failed under an active fault plan that actually injected
  /// events (drops, corruptions, crashes, staggered wakeups): the failure is
  /// attributed to the adversary, not the protocol.  A faulted run that
  /// still verifies reports Elected/NoLeader as usual; a wrong leader is
  /// never silent — the same verification that produces this disposition
  /// reports it as valid = false.
  DetectedFault,
};

/// Display name of a disposition ("elected", "no leader", ...).
[[nodiscard]] const char* to_string(Disposition disposition);

/// Knobs for elect().
struct ElectionOptions {
  /// Use the hashed FastClassifier instead of the paper-faithful Classifier.
  bool use_fast_classifier = false;

  /// Channel feedback strength, applied consistently to the classification
  /// AND the simulation (the paper's model is CollisionDetection; the no-CD
  /// variant is the weaker-feedback extension).
  radio::ChannelModel channel_model = radio::ChannelModel::CollisionDetection;

  /// Run the canonical DRIP on the simulator (otherwise only classify).
  bool simulate = true;

  /// Simulator settings; max_rounds is raised automatically to cover the
  /// schedule, so the default horizon never truncates a canonical run.
  radio::SimulatorOptions simulator = {};
};

/// Everything elect() / run_protocol() learned about a configuration.
struct ElectionReport {
  /// Registry name of the protocol that produced this report ("canonical",
  /// "classify", "binary-search", ... — see core/protocol.hpp).
  std::string protocol;

  /// How the run ended (see Disposition).
  Disposition disposition = Disposition::NotSimulated;

  /// The Classifier run (verdict, iterations, partitions, step counts).
  /// Default-constructed for the baseline protocols, which never classify.
  ClassifierResult classification;

  /// The compiled canonical schedule; null when simulation was skipped
  /// (classify-only runs never pay for schedule compilation).
  std::shared_ptr<const CanonicalSchedule> schedule;

  /// Classifier verdict (== classification.feasible()).
  bool feasible = false;

  /// True when the canonical DRIP was executed on the simulator.
  bool simulated = false;

  /// The node that elected itself (feasible + simulated runs only).
  std::optional<graph::NodeId> leader;

  /// Verification flag: feasible runs elected exactly the predicted leader;
  /// infeasible runs elected nobody; all nodes terminated in the same local
  /// round equal to the schedule length.
  bool valid = false;

  /// Global rounds until the last node terminated.
  config::Round global_rounds = 0;

  /// Local rounds from wakeup to termination (identical for every node).
  std::uint64_t local_rounds = 0;

  /// Channel statistics of the run.
  radio::RunStats stats;
};

/// The compiled per-configuration knowledge a schedule cache stores: the
/// Classifier run and (once some simulating job needed it) the canonical
/// schedule built from it.  Both are pure functions of (configuration,
/// channel model, classifier choice), which is what makes memoizing them
/// safe: a cache hit yields bit-identical artifacts to a fresh compile.
struct CompiledConfiguration {
  ClassifierResult classification;

  /// Null until a simulating run pays for schedule compilation (classify-only
  /// jobs never do); an entry may later be upgraded in place of a rebuild.
  std::shared_ptr<const CanonicalSchedule> schedule;
};

/// Cache of compiled configuration knowledge, consulted by run_protocol()
/// for the classifying kinds.  The interface lives in core so the election
/// pipeline can use a cache without depending on any concrete store; the
/// engine's sharded LRU (engine/schedule_cache.hpp) is the implementation.
///
/// Contract: lookup() may only return an entry previously store()d for an
/// equal (configuration, model, fast_classifier) key — implementations keyed
/// by a digest must verify the configuration on a match, so a hash collision
/// degrades to a miss, never to wrong artifacts.  Both calls must be safe
/// from concurrent worker threads.
class ScheduleCacheHandle {
 public:
  virtual ~ScheduleCacheHandle() = default;

  /// The cached artifacts for the key, or null on a miss.
  [[nodiscard]] virtual std::shared_ptr<const CompiledConfiguration> lookup(
      const config::Configuration& configuration, radio::ChannelModel model,
      bool fast_classifier) = 0;

  /// Stores (or replaces) the key's artifacts; returns the stored entry.
  virtual std::shared_ptr<const CompiledConfiguration> store(
      const config::Configuration& configuration, radio::ChannelModel model, bool fast_classifier,
      CompiledConfiguration compiled) = 0;
};

/// Reusable working memory for elect().  A worker running many elections
/// back to back passes the same scratch to every call and amortizes the
/// simulator's per-run allocations; results are unaffected (asserted by the
/// engine parity tests).
struct ElectionScratch {
  radio::SimulatorScratch simulator;

  /// Optional schedule/classification cache consulted by the classifying
  /// protocol kinds; null (the default) compiles from scratch every run.
  /// Not owned; outcomes are unaffected by hits vs misses (asserted by
  /// tests/test_schedule_cache.cpp).
  ScheduleCacheHandle* schedule_cache = nullptr;
};

/// Classifies `configuration` and (by default) runs the canonical DRIP on it.
/// A thin wrapper over run_protocol() with the canonical spec (or the
/// classify-only spec when `options.simulate` is false) — see
/// core/protocol.hpp for the full protocol axis.
[[nodiscard]] ElectionReport elect(const config::Configuration& configuration,
                                   const ElectionOptions& options = {});

/// Same as elect(), reusing `scratch`'s buffers instead of allocating.
[[nodiscard]] ElectionReport elect(const config::Configuration& configuration,
                                   const ElectionOptions& options, ElectionScratch& scratch);

}  // namespace arl::core
