#pragma once

/// \file partition.hpp
/// Shared helpers of the two Classifier implementations: the label
/// computation from Algorithm 3 (Partitioner, lines 1-22) and partition
/// inspection utilities.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "config/configuration.hpp"
#include "core/label.hpp"
#include "graph/graph.hpp"
#include "radio/message.hpp"

namespace arl::core {

/// Computes the label of every node per Algorithm 3 lines 1-22: for each
/// neighbour w of v with (class(w) != class(v) or t_w != t_v), the triple
/// (class(w), σ+1+t_w-t_v, ·) joins v's label, with c = ∗ when two or more
/// neighbours produce the same (a, b).  Labels come out ≺hist-sorted.
/// `steps`, when non-null, accumulates the basic-operation count (triple
/// comparisons + sort work) for complexity instrumentation.
///
/// Under ChannelModel::NoCollisionDetection (extension, not in the paper) a
/// slot with two or more transmitters is heard as silence, so such (a, b)
/// slots are dropped from the label instead of being starred — the label is
/// exactly what a no-CD listener can know about the phase.
[[nodiscard]] std::vector<Label> compute_labels(
    const config::Configuration& configuration, const std::vector<ClassId>& clazz,
    std::uint64_t* steps = nullptr,
    radio::ChannelModel model = radio::ChannelModel::CollisionDetection);

/// Number of nodes in each class; index k-1 holds the size of class k.
[[nodiscard]] std::vector<std::uint32_t> class_sizes(const std::vector<ClassId>& clazz,
                                                     ClassId num_classes);

/// Smallest class containing exactly one node, with that node, or nullopt.
[[nodiscard]] std::optional<std::pair<ClassId, graph::NodeId>> find_singleton(
    const std::vector<ClassId>& clazz, ClassId num_classes);

}  // namespace arl::core
