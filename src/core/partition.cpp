#include "core/partition.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arl::core {

std::vector<Label> compute_labels(const config::Configuration& configuration,
                                  const std::vector<ClassId>& clazz, std::uint64_t* steps,
                                  radio::ChannelModel model) {
  const graph::Graph& graph = configuration.graph();
  const graph::NodeId n = graph.node_count();
  ARL_EXPECTS(clazz.size() == n, "one class per node required");
  const config::Tag sigma = configuration.span();

  std::uint64_t ops = 0;
  std::vector<Label> labels(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    Label& list = labels[v];
    const auto tv = static_cast<std::int64_t>(configuration.tag(v));
    for (const graph::NodeId w : graph.neighbors(v)) {
      const auto tw = static_cast<std::int64_t>(configuration.tag(w));
      if (clazz[w] == clazz[v] && tw == tv) {
        // v and w would transmit simultaneously: v neither receives w's
        // transmission nor detects a collision from it (Algorithm 3 line 4).
        continue;
      }
      const auto round = static_cast<std::uint32_t>(sigma + 1 + tw - tv);
      bool fresh = true;
      for (auto& triple : list) {
        ++ops;
        if (triple.cls == clazz[w] && triple.round == round) {
          triple.star = true;  // second transmitter on the same slot → (∗)
          fresh = false;
          break;
        }
      }
      if (fresh) {
        list.push_back(LabelTriple{clazz[w], round, false});
      }
    }
    if (model == radio::ChannelModel::NoCollisionDetection) {
      // Collided slots read as silence: erase the starred triples.
      std::erase_if(list, [](const LabelTriple& triple) { return triple.star; });
    }
    std::sort(list.begin(), list.end());
    ops += list.size();
  }
  if (steps != nullptr) {
    *steps += ops;
  }
  return labels;
}

std::vector<std::uint32_t> class_sizes(const std::vector<ClassId>& clazz, ClassId num_classes) {
  std::vector<std::uint32_t> sizes(num_classes, 0);
  for (const ClassId c : clazz) {
    ARL_EXPECTS(c >= 1 && c <= num_classes, "class id out of range");
    ++sizes[c - 1];
  }
  return sizes;
}

std::optional<std::pair<ClassId, graph::NodeId>> find_singleton(const std::vector<ClassId>& clazz,
                                                                ClassId num_classes) {
  const auto sizes = class_sizes(clazz, num_classes);
  for (ClassId k = 1; k <= num_classes; ++k) {
    if (sizes[k - 1] == 1) {
      for (std::size_t v = 0; v < clazz.size(); ++v) {
        if (clazz[v] == k) {
          return std::make_pair(k, static_cast<graph::NodeId>(v));
        }
      }
    }
  }
  return std::nullopt;
}

}  // namespace arl::core
