#include "core/schedule_io.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <sstream>
#include <string_view>

#include "support/assert.hpp"
#include "support/hash.hpp"
#include "support/parse.hpp"

namespace arl::core {

namespace {

bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    return true;
  }
  return false;
}

void write_label(const Label& label, std::ostream& out) {
  out << ' ' << label.size();
  for (const auto& triple : label) {
    out << ' ' << triple.cls << ' ' << triple.round << ' ' << (triple.star ? '*' : '1');
  }
}

using support::TokenCursor;

/// Reads a label (` <count> <cls round star>*`) from the cursor's position.
/// The per-node label lines dominate artifact parsing — scanning them with
/// std::from_chars instead of one istringstream extraction per token is
/// what keeps a store preload cheaper than re-classifying.
Label read_label(TokenCursor& in) {
  std::size_t count = 0;
  ARL_EXPECTS(in.next_number(count), "malformed label length");
  Label label;
  label.reserve(count);
  std::string_view star;
  for (std::size_t i = 0; i < count; ++i) {
    LabelTriple triple;
    ARL_EXPECTS(in.next_number(triple.cls) && in.next_number(triple.round) && in.next(star) &&
                    (star == "1" || star == "*"),
                "malformed label triple");
    triple.star = star == "*";
    ARL_EXPECTS(label.empty() || label.back() < triple, "label triples must be ≺hist-sorted");
    label.push_back(triple);
  }
  return label;
}

}  // namespace

void schedule_to_text(const CanonicalSchedule& schedule, std::ostream& out) {
  out << "arl-schedule v1\n";
  out << "sigma " << schedule.sigma << '\n';
  out << "model " << (schedule.model == radio::ChannelModel::CollisionDetection ? "cd" : "nocd")
      << '\n';
  out << "feasible " << (schedule.feasible ? 1 : 0) << '\n';
  if (schedule.feasible) {
    out << "leader " << schedule.leader_old_class;
    write_label(schedule.leader_label, out);
    out << '\n';
  }
  out << "phases " << schedule.phases.size() << '\n';
  for (const PhaseSpec& phase : schedule.phases) {
    out << "phase " << phase.num_classes << '\n';
    for (const PhaseEntry& entry : phase.entries) {
      out << "entry " << entry.old_class;
      write_label(entry.label, out);
      out << '\n';
    }
  }
}

std::string schedule_to_text_string(const CanonicalSchedule& schedule) {
  std::ostringstream out;
  schedule_to_text(schedule, out);
  return out.str();
}

CanonicalSchedule schedule_from_text(std::istream& in) {
  std::string line;
  std::string keyword;
  CanonicalSchedule schedule;

  ARL_EXPECTS(next_content_line(in, line), "missing header");
  ARL_EXPECTS(line.rfind("arl-schedule v1", 0) == 0, "unknown schedule format/version");

  ARL_EXPECTS(next_content_line(in, line), "missing 'sigma'");
  {
    std::istringstream parse(line);
    parse >> keyword >> schedule.sigma;
    ARL_EXPECTS(!parse.fail() && keyword == "sigma", "malformed 'sigma' line");
  }

  ARL_EXPECTS(next_content_line(in, line), "missing 'model'");
  {
    std::istringstream parse(line);
    std::string model;
    parse >> keyword >> model;
    ARL_EXPECTS(!parse.fail() && keyword == "model" && (model == "cd" || model == "nocd"),
                "malformed 'model' line");
    schedule.model = model == "cd" ? radio::ChannelModel::CollisionDetection
                                   : radio::ChannelModel::NoCollisionDetection;
  }

  ARL_EXPECTS(next_content_line(in, line), "missing 'feasible'");
  {
    std::istringstream parse(line);
    int feasible = 0;
    parse >> keyword >> feasible;
    ARL_EXPECTS(!parse.fail() && keyword == "feasible" && (feasible == 0 || feasible == 1),
                "malformed 'feasible' line");
    schedule.feasible = feasible == 1;
  }

  if (schedule.feasible) {
    ARL_EXPECTS(next_content_line(in, line), "missing 'leader'");
    TokenCursor cursor(line);
    std::string_view token;
    ARL_EXPECTS(cursor.next(token) && token == "leader" &&
                    cursor.next_number(schedule.leader_old_class),
                "malformed 'leader' line");
    schedule.leader_label = read_label(cursor);
  }

  std::size_t phase_count = 0;
  ARL_EXPECTS(next_content_line(in, line), "missing 'phases'");
  {
    std::istringstream parse(line);
    parse >> keyword >> phase_count;
    ARL_EXPECTS(!parse.fail() && keyword == "phases" && phase_count >= 1,
                "malformed 'phases' line");
  }

  schedule.phases.reserve(phase_count);
  for (std::size_t j = 0; j < phase_count; ++j) {
    ARL_EXPECTS(next_content_line(in, line), "missing 'phase' line");
    PhaseSpec phase;
    {
      std::istringstream parse(line);
      parse >> keyword >> phase.num_classes;
      ARL_EXPECTS(!parse.fail() && keyword == "phase" && phase.num_classes >= 1,
                  "malformed 'phase' line");
    }
    phase.entries.reserve(phase.num_classes);
    for (ClassId k = 0; k < phase.num_classes; ++k) {
      ARL_EXPECTS(next_content_line(in, line), "missing 'entry' line");
      TokenCursor cursor(line);
      std::string_view token;
      PhaseEntry entry;
      ARL_EXPECTS(cursor.next(token) && token == "entry" && cursor.next_number(entry.old_class),
                  "malformed 'entry' line");
      entry.label = read_label(cursor);
      phase.entries.push_back(std::move(entry));
    }
    schedule.phases.push_back(std::move(phase));
  }

  // Structural sanity: L_1 is always [(1, null)].
  ARL_EXPECTS(schedule.phases[0].num_classes == 1 &&
                  schedule.phases[0].entries[0].old_class == 1 &&
                  schedule.phases[0].entries[0].label.empty(),
              "phase P_1 must carry L_1 = [(1, null)]");
  return schedule;
}

CanonicalSchedule schedule_from_text_string(const std::string& text) {
  std::istringstream in(text);
  return schedule_from_text(in);
}

namespace {

void absorb_label(support::Hash64& hash, const Label& label) {
  hash.absorb(label.size());
  for (const LabelTriple& triple : label) {
    hash.absorb(triple.cls);
    hash.absorb(triple.round);
    hash.absorb(triple.star ? 1 : 0);
  }
}

}  // namespace

void classification_to_text(const ClassifierResult& result, std::ostream& out) {
  out << "arl-classification v1\n";
  out << "model " << (result.model == radio::ChannelModel::CollisionDetection ? "cd" : "nocd")
      << '\n';
  out << "verdict " << (result.feasible() ? "feasible" : "infeasible") << '\n';
  out << "iterations " << result.iterations << '\n';
  if (result.feasible()) {
    out << "leader " << result.leader_class << ' ' << result.leader << '\n';
  }
  out << "steps " << result.steps << '\n';
  for (const IterationRecord& record : result.records) {
    out << "record " << record.num_classes << ' ' << record.clazz.size() << '\n';
    out << "classes";
    for (const ClassId cls : record.clazz) {
      out << ' ' << cls;
    }
    out << '\n';
    for (const Label& label : record.labels) {
      out << "label";
      write_label(label, out);
      out << '\n';
    }
    out << "reps";
    for (const graph::NodeId rep : record.reps) {
      out << ' ' << rep;
    }
    out << '\n';
  }
}

std::string classification_to_text_string(const ClassifierResult& result) {
  std::ostringstream out;
  classification_to_text(result, out);
  return out.str();
}

ClassifierResult classification_from_text(std::istream& in) {
  std::string line;
  std::string keyword;
  ClassifierResult result;

  ARL_EXPECTS(next_content_line(in, line), "missing header");
  ARL_EXPECTS(line.rfind("arl-classification v1", 0) == 0,
              "unknown classification format/version");

  ARL_EXPECTS(next_content_line(in, line), "missing 'model'");
  {
    std::istringstream parse(line);
    std::string model;
    parse >> keyword >> model;
    ARL_EXPECTS(!parse.fail() && keyword == "model" && (model == "cd" || model == "nocd"),
                "malformed 'model' line");
    result.model = model == "cd" ? radio::ChannelModel::CollisionDetection
                                 : radio::ChannelModel::NoCollisionDetection;
  }

  ARL_EXPECTS(next_content_line(in, line), "missing 'verdict'");
  {
    std::istringstream parse(line);
    std::string verdict;
    parse >> keyword >> verdict;
    ARL_EXPECTS(!parse.fail() && keyword == "verdict" &&
                    (verdict == "feasible" || verdict == "infeasible"),
                "malformed 'verdict' line");
    result.verdict = verdict == "feasible" ? Verdict::Feasible : Verdict::Infeasible;
  }

  ARL_EXPECTS(next_content_line(in, line), "missing 'iterations'");
  {
    std::istringstream parse(line);
    parse >> keyword >> result.iterations;
    ARL_EXPECTS(!parse.fail() && keyword == "iterations" && result.iterations >= 1,
                "malformed 'iterations' line");
  }

  if (result.feasible()) {
    ARL_EXPECTS(next_content_line(in, line), "missing 'leader'");
    std::istringstream parse(line);
    parse >> keyword >> result.leader_class >> result.leader;
    ARL_EXPECTS(!parse.fail() && keyword == "leader" && result.leader_class >= 1,
                "malformed 'leader' line");
  }

  ARL_EXPECTS(next_content_line(in, line), "missing 'steps'");
  {
    std::istringstream parse(line);
    parse >> keyword >> result.steps;
    ARL_EXPECTS(!parse.fail() && keyword == "steps", "malformed 'steps' line");
  }

  result.records.reserve(result.iterations);
  std::size_t nodes = 0;
  for (std::uint32_t j = 0; j < result.iterations; ++j) {
    ARL_EXPECTS(next_content_line(in, line), "missing 'record' line");
    IterationRecord record;
    std::size_t n = 0;
    {
      std::istringstream parse(line);
      parse >> keyword >> record.num_classes >> n;
      ARL_EXPECTS(!parse.fail() && keyword == "record" && record.num_classes >= 1 && n >= 1,
                  "malformed 'record' line");
    }
    if (j == 0) {
      nodes = n;
    }
    ARL_EXPECTS(n == nodes, "records disagree on the node count");
    ARL_EXPECTS(record.num_classes <= n, "more classes than nodes");

    ARL_EXPECTS(next_content_line(in, line), "missing 'classes' line");
    {
      TokenCursor cursor(line);
      std::string_view token;
      ARL_EXPECTS(cursor.next(token) && token == "classes", "malformed 'classes' line");
      record.clazz.reserve(n);
      for (std::size_t v = 0; v < n; ++v) {
        ClassId cls = 0;
        ARL_EXPECTS(cursor.next_number(cls) && cls >= 1 && cls <= record.num_classes,
                    "class out of range in 'classes' line");
        record.clazz.push_back(cls);
      }
    }

    record.labels.reserve(n);
    for (std::size_t v = 0; v < n; ++v) {
      ARL_EXPECTS(next_content_line(in, line), "missing 'label' line");
      TokenCursor cursor(line);
      std::string_view token;
      ARL_EXPECTS(cursor.next(token) && token == "label", "malformed 'label' line");
      record.labels.push_back(read_label(cursor));
    }

    ARL_EXPECTS(next_content_line(in, line), "missing 'reps' line");
    {
      TokenCursor cursor(line);
      std::string_view token;
      ARL_EXPECTS(cursor.next(token) && token == "reps", "malformed 'reps' line");
      record.reps.reserve(record.num_classes);
      for (ClassId k = 0; k < record.num_classes; ++k) {
        graph::NodeId rep = 0;
        ARL_EXPECTS(cursor.next_number(rep) && rep < n,
                    "representative out of range in 'reps' line");
        record.reps.push_back(rep);
      }
    }
    result.records.push_back(std::move(record));
  }

  if (result.feasible()) {
    ARL_EXPECTS(result.leader < nodes, "leader node out of range");
    ARL_EXPECTS(result.leader_class <= result.records.back().num_classes,
                "leader class out of range");
  }
  return result;
}

ClassifierResult classification_from_text_string(const std::string& text) {
  std::istringstream in(text);
  return classification_from_text(in);
}

std::uint64_t classification_fingerprint(const ClassifierResult& result) {
  // A third key domain, separated from both config::fingerprint and
  // schedule_fingerprint by its seed.
  support::Hash64 hash(0xC1A55F1EULL);
  hash.absorb(result.feasible() ? 1 : 0);
  hash.absorb(static_cast<std::uint64_t>(result.model));
  hash.absorb(result.iterations);
  hash.absorb(result.records.size());
  for (const IterationRecord& record : result.records) {
    hash.absorb(record.num_classes);
    hash.absorb(record.clazz.size());
    for (const ClassId cls : record.clazz) {
      hash.absorb(cls);
    }
    for (const Label& label : record.labels) {
      absorb_label(hash, label);
    }
    for (const graph::NodeId rep : record.reps) {
      hash.absorb(rep);
    }
  }
  if (result.feasible()) {
    hash.absorb(result.leader_class);
    hash.absorb(result.leader);
  }
  hash.absorb(result.steps);
  return hash.digest();
}

std::uint64_t schedule_fingerprint(const CanonicalSchedule& schedule) {
  // Domain-separated from config::fingerprint (different seed), so the two
  // key spaces never alias in a shared artifact store.
  support::Hash64 hash(0x5CED0FEEULL);
  hash.absorb(schedule.sigma);
  hash.absorb(static_cast<std::uint64_t>(schedule.model));
  hash.absorb(schedule.feasible ? 1 : 0);
  if (schedule.feasible) {
    hash.absorb(schedule.leader_old_class);
    absorb_label(hash, schedule.leader_label);
  }
  hash.absorb(schedule.phases.size());
  for (const PhaseSpec& phase : schedule.phases) {
    hash.absorb(phase.num_classes);
    for (const PhaseEntry& entry : phase.entries) {
      hash.absorb(entry.old_class);
      absorb_label(hash, entry.label);
    }
  }
  return hash.digest();
}

}  // namespace arl::core
