#include "core/schedule_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"
#include "support/hash.hpp"

namespace arl::core {

namespace {

bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    return true;
  }
  return false;
}

void write_label(const Label& label, std::ostream& out) {
  out << ' ' << label.size();
  for (const auto& triple : label) {
    out << ' ' << triple.cls << ' ' << triple.round << ' ' << (triple.star ? '*' : '1');
  }
}

Label read_label(std::istringstream& in) {
  std::size_t count = 0;
  in >> count;
  ARL_EXPECTS(!in.fail(), "malformed label length");
  Label label;
  label.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    LabelTriple triple;
    char star = '\0';
    in >> triple.cls >> triple.round >> star;
    ARL_EXPECTS(!in.fail() && (star == '1' || star == '*'), "malformed label triple");
    triple.star = (star == '*');
    ARL_EXPECTS(label.empty() || label.back() < triple, "label triples must be ≺hist-sorted");
    label.push_back(triple);
  }
  return label;
}

}  // namespace

void schedule_to_text(const CanonicalSchedule& schedule, std::ostream& out) {
  out << "arl-schedule v1\n";
  out << "sigma " << schedule.sigma << '\n';
  out << "model " << (schedule.model == radio::ChannelModel::CollisionDetection ? "cd" : "nocd")
      << '\n';
  out << "feasible " << (schedule.feasible ? 1 : 0) << '\n';
  if (schedule.feasible) {
    out << "leader " << schedule.leader_old_class;
    write_label(schedule.leader_label, out);
    out << '\n';
  }
  out << "phases " << schedule.phases.size() << '\n';
  for (const PhaseSpec& phase : schedule.phases) {
    out << "phase " << phase.num_classes << '\n';
    for (const PhaseEntry& entry : phase.entries) {
      out << "entry " << entry.old_class;
      write_label(entry.label, out);
      out << '\n';
    }
  }
}

std::string schedule_to_text_string(const CanonicalSchedule& schedule) {
  std::ostringstream out;
  schedule_to_text(schedule, out);
  return out.str();
}

CanonicalSchedule schedule_from_text(std::istream& in) {
  std::string line;
  std::string keyword;
  CanonicalSchedule schedule;

  ARL_EXPECTS(next_content_line(in, line), "missing header");
  ARL_EXPECTS(line.rfind("arl-schedule v1", 0) == 0, "unknown schedule format/version");

  ARL_EXPECTS(next_content_line(in, line), "missing 'sigma'");
  {
    std::istringstream parse(line);
    parse >> keyword >> schedule.sigma;
    ARL_EXPECTS(!parse.fail() && keyword == "sigma", "malformed 'sigma' line");
  }

  ARL_EXPECTS(next_content_line(in, line), "missing 'model'");
  {
    std::istringstream parse(line);
    std::string model;
    parse >> keyword >> model;
    ARL_EXPECTS(!parse.fail() && keyword == "model" && (model == "cd" || model == "nocd"),
                "malformed 'model' line");
    schedule.model = model == "cd" ? radio::ChannelModel::CollisionDetection
                                   : radio::ChannelModel::NoCollisionDetection;
  }

  ARL_EXPECTS(next_content_line(in, line), "missing 'feasible'");
  {
    std::istringstream parse(line);
    int feasible = 0;
    parse >> keyword >> feasible;
    ARL_EXPECTS(!parse.fail() && keyword == "feasible" && (feasible == 0 || feasible == 1),
                "malformed 'feasible' line");
    schedule.feasible = feasible == 1;
  }

  if (schedule.feasible) {
    ARL_EXPECTS(next_content_line(in, line), "missing 'leader'");
    std::istringstream parse(line);
    parse >> keyword >> schedule.leader_old_class;
    ARL_EXPECTS(!parse.fail() && keyword == "leader", "malformed 'leader' line");
    schedule.leader_label = read_label(parse);
  }

  std::size_t phase_count = 0;
  ARL_EXPECTS(next_content_line(in, line), "missing 'phases'");
  {
    std::istringstream parse(line);
    parse >> keyword >> phase_count;
    ARL_EXPECTS(!parse.fail() && keyword == "phases" && phase_count >= 1,
                "malformed 'phases' line");
  }

  schedule.phases.reserve(phase_count);
  for (std::size_t j = 0; j < phase_count; ++j) {
    ARL_EXPECTS(next_content_line(in, line), "missing 'phase' line");
    PhaseSpec phase;
    {
      std::istringstream parse(line);
      parse >> keyword >> phase.num_classes;
      ARL_EXPECTS(!parse.fail() && keyword == "phase" && phase.num_classes >= 1,
                  "malformed 'phase' line");
    }
    phase.entries.reserve(phase.num_classes);
    for (ClassId k = 0; k < phase.num_classes; ++k) {
      ARL_EXPECTS(next_content_line(in, line), "missing 'entry' line");
      std::istringstream parse(line);
      PhaseEntry entry;
      parse >> keyword >> entry.old_class;
      ARL_EXPECTS(!parse.fail() && keyword == "entry", "malformed 'entry' line");
      entry.label = read_label(parse);
      phase.entries.push_back(std::move(entry));
    }
    schedule.phases.push_back(std::move(phase));
  }

  // Structural sanity: L_1 is always [(1, null)].
  ARL_EXPECTS(schedule.phases[0].num_classes == 1 &&
                  schedule.phases[0].entries[0].old_class == 1 &&
                  schedule.phases[0].entries[0].label.empty(),
              "phase P_1 must carry L_1 = [(1, null)]");
  return schedule;
}

CanonicalSchedule schedule_from_text_string(const std::string& text) {
  std::istringstream in(text);
  return schedule_from_text(in);
}

namespace {

void absorb_label(support::Hash64& hash, const Label& label) {
  hash.absorb(label.size());
  for (const LabelTriple& triple : label) {
    hash.absorb(triple.cls);
    hash.absorb(triple.round);
    hash.absorb(triple.star ? 1 : 0);
  }
}

}  // namespace

std::uint64_t schedule_fingerprint(const CanonicalSchedule& schedule) {
  // Domain-separated from config::fingerprint (different seed), so the two
  // key spaces never alias in a shared artifact store.
  support::Hash64 hash(0x5CED0FEEULL);
  hash.absorb(schedule.sigma);
  hash.absorb(static_cast<std::uint64_t>(schedule.model));
  hash.absorb(schedule.feasible ? 1 : 0);
  if (schedule.feasible) {
    hash.absorb(schedule.leader_old_class);
    absorb_label(hash, schedule.leader_label);
  }
  hash.absorb(schedule.phases.size());
  for (const PhaseSpec& phase : schedule.phases) {
    hash.absorb(phase.num_classes);
    for (const PhaseEntry& entry : phase.entries) {
      hash.absorb(entry.old_class);
      absorb_label(hash, entry.label);
    }
  }
  return hash.digest();
}

}  // namespace arl::core
