#include "core/classifier.hpp"

#include <algorithm>

#include "core/partition.hpp"
#include "support/assert.hpp"

namespace arl::core {

std::vector<ClassId> ClassifierResult::classes_after(std::uint32_t j) const {
  if (j == 0) {
    // Init-Aug: every node in class 1.
    const std::size_t n = records.empty() ? 0 : records.front().clazz.size();
    return std::vector<ClassId>(n, 1);
  }
  ARL_EXPECTS(j <= records.size(), "iteration index out of range");
  return records[j - 1].clazz;
}

ClassId ClassifierResult::num_classes_after(std::uint32_t j) const {
  if (j == 0) {
    return 1;
  }
  ARL_EXPECTS(j <= records.size(), "iteration index out of range");
  return records[j - 1].num_classes;
}

ClassifierResult Classifier::run(const config::Configuration& configuration) const {
  const graph::NodeId n = configuration.size();
  ClassifierResult result;
  result.model = model_;

  // Algorithm 1 (Init-Aug): one class, represented by the first node in the
  // fixed vertex order.
  std::vector<ClassId> clazz(n, 1);
  std::vector<graph::NodeId> reps(n + 1, 0);  // 1-based; reps[k] = rep of class k
  ClassId num_classes = 1;
  reps[1] = 0;

  const std::uint32_t max_iterations = (n + 1) / 2;  // ceil(n/2)
  for (std::uint32_t iteration = 1; iteration <= max_iterations; ++iteration) {
    const ClassId old_class_count = num_classes;

    // Algorithm 3 (Partitioner), lines 1-22: label every node.
    std::vector<Label> labels = compute_labels(configuration, clazz, &result.steps, model_);

    // Algorithm 2 (Refine): compare each node against every class
    // representative; unmatched nodes open new classes in vertex order.
    const std::vector<ClassId> old_class = clazz;
    for (graph::NodeId v = 0; v < n; ++v) {
      bool assigned = false;
      for (ClassId k = 1; k <= num_classes; ++k) {
        const graph::NodeId rep = reps[k];
        result.steps += 1 + std::min(labels[v].size(), labels[rep].size());
        if (old_class[v] == old_class[rep] && labels[v] == labels[rep]) {
          clazz[v] = k;
          assigned = true;
          // The paper's loop keeps scanning; the match is provably unique
          // (distinct old reps have distinct old classes), so breaking is
          // observationally identical and the step counter above already
          // charged the comparison.
        }
      }
      if (!assigned) {
        ++num_classes;
        ARL_ASSERT(num_classes <= n, "cannot have more classes than nodes");
        clazz[v] = num_classes;
        reps[num_classes] = v;
      }
    }

    // Record the iteration for schedule compilation.
    IterationRecord record;
    record.clazz = clazz;
    record.labels = std::move(labels);
    record.reps.assign(reps.begin() + 1, reps.begin() + 1 + num_classes);
    record.num_classes = num_classes;
    result.records.push_back(std::move(record));
    result.iterations = iteration;

    // Algorithm 4 line 5: a singleton class elects its node.
    if (const auto singleton = find_singleton(clazz, num_classes)) {
      result.verdict = Verdict::Feasible;
      result.leader_class = singleton->first;
      result.leader = singleton->second;
      return result;
    }
    // Algorithm 4 line 8: a stable partition can never change again.
    if (num_classes == old_class_count) {
      result.verdict = Verdict::Infeasible;
      return result;
    }
  }

  // Lemma 3.4: one of the two exits always fires within ceil(n/2) iterations.
  ARL_ASSERT(false, "Classifier failed to terminate within ceil(n/2) iterations");
  return result;
}

}  // namespace arl::core
