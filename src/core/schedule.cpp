#include "core/schedule.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arl::core {

std::uint64_t CanonicalSchedule::phase_length(std::size_t phase_index) const {
  ARL_EXPECTS(phase_index < phases.size(), "phase index out of range");
  return phases[phase_index].num_classes * block_length() + sigma;
}

std::uint64_t CanonicalSchedule::total_rounds() const {
  std::uint64_t total = 0;
  for (std::size_t j = 0; j < phases.size(); ++j) {
    total += phase_length(j);
  }
  return total + 1;  // the termination round r_{T} + 1
}

std::size_t CanonicalSchedule::suggested_window() const {
  std::uint64_t longest = 0;
  for (std::size_t j = 0; j < phases.size(); ++j) {
    longest = std::max(longest, phase_length(j));
  }
  return static_cast<std::size_t>(longest) + 2;
}

CanonicalSchedule build_schedule(const config::Configuration& configuration,
                                 const ClassifierResult& classification) {
  ARL_EXPECTS(classification.iterations >= 1, "classification must have run");
  ARL_EXPECTS(classification.records.size() == classification.iterations,
              "one record per iteration required");
  const std::uint32_t exit_iteration = classification.iterations;

  CanonicalSchedule schedule;
  schedule.sigma = configuration.span();
  schedule.model = classification.model;
  schedule.phases.resize(exit_iteration);

  // L_1 = [(1, null)]: all nodes share one class with no history.
  schedule.phases[0].num_classes = 1;
  schedule.phases[0].entries = {PhaseEntry{1, {}}};

  // L_j for j = 2..T: one entry per class representative after iteration
  // j-1, pairing its class at the end of iteration j-2 with the label it was
  // assigned during iteration j-1.
  for (std::uint32_t j = 2; j <= exit_iteration; ++j) {
    const IterationRecord& record = classification.records[j - 2];
    const std::vector<ClassId> previous = classification.classes_after(j - 2);
    PhaseSpec& phase = schedule.phases[j - 1];
    phase.num_classes = record.num_classes;
    phase.entries.reserve(record.num_classes);
    for (ClassId k = 1; k <= record.num_classes; ++k) {
      const graph::NodeId rep = record.reps[k - 1];
      phase.entries.push_back(PhaseEntry{previous[rep], record.labels[rep]});
    }
  }

  schedule.feasible = classification.feasible();
  if (schedule.feasible) {
    // The leader signature is the (old class, label) pair that would single
    // the leader out when matching the never-executed list L_{T+1}.
    const graph::NodeId leader = classification.leader;
    schedule.leader_old_class = classification.classes_after(exit_iteration - 1)[leader];
    schedule.leader_label = classification.records[exit_iteration - 1].labels[leader];
  }
  return schedule;
}

std::shared_ptr<const CanonicalSchedule> make_schedule(const config::Configuration& configuration,
                                                       radio::ChannelModel model) {
  const Classifier classifier(model);
  return std::make_shared<const CanonicalSchedule>(
      build_schedule(configuration, classifier.run(configuration)));
}

}  // namespace arl::core
