#include "core/canonical_drip.hpp"

#include "support/assert.hpp"

namespace arl::core {

namespace {
/// The canonical protocol's only message payload.
constexpr radio::Message kCanonicalPayload = 1;
}  // namespace

CanonicalDrip::CanonicalDrip(std::shared_ptr<const CanonicalSchedule> schedule,
                             MismatchPolicy policy)
    : schedule_(std::move(schedule)), policy_(policy) {
  ARL_EXPECTS(schedule_ != nullptr, "schedule required");
  ARL_EXPECTS(!schedule_->phases.empty(), "a compiled schedule has at least phase P_1");
}

std::unique_ptr<radio::NodeProgram> CanonicalDrip::instantiate(const radio::NodeEnv&) const {
  // Anonymous and deterministic: the environment (labels, coins) is ignored.
  return std::make_unique<CanonicalProgram>(schedule_, policy_);
}

std::string CanonicalDrip::name() const {
  return schedule_->feasible ? "canonical-drip(feasible)" : "canonical-drip(infeasible)";
}

std::optional<std::size_t> CanonicalDrip::history_window() const {
  return schedule_->suggested_window();
}

CanonicalProgram::CanonicalProgram(std::shared_ptr<const CanonicalSchedule> schedule,
                                   MismatchPolicy policy)
    : schedule_(std::move(schedule)), policy_(policy) {}

void CanonicalProgram::fail(const char* reason) {
  if (policy_ == MismatchPolicy::Strict) {
    ARL_ASSERT(false, std::string("canonical DRIP schedule violation: ") + reason);
  }
  failed_ = true;
}

Label CanonicalProgram::build_observed_label(std::size_t phase_index,
                                             const radio::HistoryView& history) {
  const CanonicalSchedule& s = *schedule_;
  const PhaseSpec& phase = s.phases[phase_index];
  const std::uint64_t block_len = s.block_length();
  const std::uint64_t blocks_span = phase.num_classes * block_len;

  Label observed;
  for (std::uint64_t offset = 1; offset <= blocks_span; ++offset) {
    const radio::HistoryEntry entry = history.entry(static_cast<std::size_t>(base_ + offset));
    if (entry.is_silence()) {
      continue;
    }
    const auto block = static_cast<ClassId>((offset - 1) / block_len + 1);
    const auto round = static_cast<std::uint32_t>((offset - 1) % block_len + 1);
    if (entry.is_message()) {
      if (entry.payload() != kCanonicalPayload) {
        fail("received a non-canonical payload");
        return observed;
      }
      observed.push_back(LabelTriple{block, round, false});
    } else {
      observed.push_back(LabelTriple{block, round, true});
    }
  }
  // Generated in increasing (block, round) order, hence already ≺hist-sorted.

  // Lemma 3.7: the σ trailing rounds of a phase are silent in a
  // schedule-conformant execution.
  const std::uint64_t phase_len = s.phase_length(phase_index);
  for (std::uint64_t offset = blocks_span + 1; offset <= phase_len; ++offset) {
    if (!history.entry(static_cast<std::size_t>(base_ + offset)).is_silence()) {
      fail("noise in the trailing sigma rounds of a phase");
      return observed;
    }
  }
  return observed;
}

radio::Action CanonicalProgram::decide(config::Round local_round,
                                       const radio::HistoryView& history) {
  if (done_) {
    // Termination is permanent (§2.2); the simulator does not call again,
    // but the formal object keeps answering terminate.
    return radio::Action::terminate();
  }
  const CanonicalSchedule& s = *schedule_;
  const std::uint64_t i = local_round;

  if (i == 1) {
    // Wake-round sanity: the canonical DRIP is patient (Lemma 3.6), so every
    // node wakes spontaneously hearing silence.
    if (!history.entry(0).is_silence()) {
      fail("non-silent wake round under a patient protocol");
      done_ = true;
      return radio::Action::terminate();
    }
  }

  // Phase boundary: the previous phase filled rounds base_+1 .. base_+len.
  if (i > base_ + s.phase_length(phase_)) {
    Label observed = build_observed_label(phase_, history);
    if (failed_) {
      done_ = true;
      return radio::Action::terminate();
    }
    base_ += s.phase_length(phase_);
    ++phase_;

    if (phase_ == s.phases.size()) {
      // L_{T+1} = "terminate": all nodes stop in the same local round.
      // Decision function f: leader iff the last-phase signature matches
      // the singleton class Classifier found.
      if (s.feasible) {
        elected_ = (tblock_ == s.leader_old_class && observed == s.leader_label);
      }
      done_ = true;
      return radio::Action::terminate();
    }

    // Match (old tBlock, observed label) against the next list L_{j+1}.
    const PhaseSpec& next = s.phases[phase_];
    ClassId matched = 0;
    for (ClassId k = 1; k <= next.num_classes; ++k) {
      const PhaseEntry& entry = next.entries[k - 1];
      if (entry.old_class == tblock_ && entry.label == observed) {
        if (policy_ == MismatchPolicy::Strict) {
          ARL_ASSERT(matched == 0, "list entry match must be unique (Lemma 3.8)");
        }
        matched = k;
        if (policy_ == MismatchPolicy::Robust) {
          break;
        }
      }
    }
    if (matched == 0) {
      fail("no matching list entry for the observed phase history");
      done_ = true;
      return radio::Action::terminate();
    }
    tblock_ = matched;
  }

  // Action within the current phase.
  const PhaseSpec& phase = s.phases[phase_];
  const std::uint64_t offset = i - base_;  // 1-based round within the phase
  const std::uint64_t block_len = s.block_length();
  const std::uint64_t blocks_span = phase.num_classes * block_len;
  ARL_ASSERT(offset >= 1 && offset <= s.phase_length(phase_), "offset outside phase");
  if (offset <= blocks_span) {
    const auto block = static_cast<ClassId>((offset - 1) / block_len + 1);
    const auto round = static_cast<std::uint32_t>((offset - 1) % block_len + 1);
    if (block == tblock_ && round == s.sigma + 1) {
      return radio::Action::transmit(kCanonicalPayload);
    }
  }
  return radio::Action::listen();
}

config::Round CanonicalProgram::listen_streak(config::Round local_round,
                                              const radio::HistoryView& history) {
  if (done_ || failed_) {
    return 0;  // next decide() terminates
  }
  const CanonicalSchedule& s = *schedule_;
  const std::uint64_t i = local_round;
  if (i == 1 && !(history.length() >= 1 && history.entry(0).is_silence())) {
    return 0;  // decide(1) inspects H[0] and may terminate on a forced wake
  }
  const std::uint64_t phase_end = base_ + s.phase_length(phase_);
  if (i < 1 || i > phase_end) {
    return 0;  // next decide() does phase-boundary work (state update)
  }
  // The phase's single transmission round for this node.
  const std::uint64_t transmit_round =
      base_ + (static_cast<std::uint64_t>(tblock_) - 1) * s.block_length() + s.sigma + 1;
  // First local round >= i where decide() may not simply listen: the
  // transmission round if still ahead, else the boundary call after the
  // phase's trailing sigma silent rounds.
  const std::uint64_t stop = i <= transmit_round ? transmit_round : phase_end + 1;
  return static_cast<config::Round>(stop - i);
}

}  // namespace arl::core
