#include "core/quotient.hpp"

#include "core/fast_classifier.hpp"
#include "support/assert.hpp"

namespace arl::core {

SymmetryReport analyze_symmetry(const config::Configuration& configuration,
                                const ClassifierResult& classification) {
  ARL_EXPECTS(!classification.records.empty(), "classification must have run");
  const std::vector<ClassId>& clazz = classification.records.back().clazz;
  const ClassId num_classes = classification.records.back().num_classes;
  ARL_EXPECTS(clazz.size() == configuration.size(),
              "classification does not match the configuration");

  SymmetryReport report;
  report.orbits.resize(num_classes);
  for (ClassId k = 1; k <= num_classes; ++k) {
    report.orbits[k - 1].id = k;
  }
  for (graph::NodeId v = 0; v < configuration.size(); ++v) {
    report.orbits[clazz[v] - 1].members.push_back(v);
  }
  for (std::size_t index = 0; index < report.orbits.size(); ++index) {
    Orbit& orbit = report.orbits[index];
    ARL_ASSERT(!orbit.members.empty(), "every class has at least one node");
    if (orbit.members.size() == 1) {
      report.singleton_orbits.push_back(index);
    }
  }

  // Quotient graph over orbits.
  graph::Graph::Builder builder(num_classes);
  for (graph::NodeId v = 0; v < configuration.size(); ++v) {
    for (const graph::NodeId w : configuration.graph().neighbors(v)) {
      if (v < w) {
        const ClassId a = clazz[v];
        const ClassId b = clazz[w];
        if (a != b && !builder.has_edge(a - 1, b - 1)) {
          builder.add_edge(a - 1, b - 1);
        }
      }
    }
  }
  report.quotient = std::move(builder).build();

  ARL_ENSURES(report.feasible() == classification.feasible(),
              "singleton orbits must coincide with the feasibility verdict");
  return report;
}

SymmetryReport analyze_symmetry(const config::Configuration& configuration) {
  return analyze_symmetry(configuration, FastClassifier{}.run(configuration));
}

}  // namespace arl::core
