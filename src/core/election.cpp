#include "core/election.hpp"

#include <algorithm>

#include "core/fast_classifier.hpp"
#include "support/assert.hpp"

namespace arl::core {

ElectionReport elect(const config::Configuration& configuration, const ElectionOptions& options) {
  ElectionScratch scratch;
  return elect(configuration, options, scratch);
}

ElectionReport elect(const config::Configuration& configuration, const ElectionOptions& options,
                     ElectionScratch& scratch) {
  ElectionReport report;
  if (options.use_fast_classifier) {
    report.classification = FastClassifier(options.channel_model).run(configuration);
  } else {
    report.classification = Classifier(options.channel_model).run(configuration);
  }
  report.feasible = report.classification.feasible();

  if (!options.simulate) {
    report.valid = true;  // nothing further to verify (and no schedule needed)
    return report;
  }

  report.schedule = std::make_shared<const CanonicalSchedule>(
      build_schedule(configuration, report.classification));

  const CanonicalDrip drip(report.schedule, MismatchPolicy::Strict);
  radio::SimulatorOptions simulator_options = options.simulator;
  simulator_options.channel_model = report.schedule->model;
  const config::Tag max_tag =
      *std::max_element(configuration.tags().begin(), configuration.tags().end());
  const std::uint64_t needed_horizon = max_tag + report.schedule->total_rounds() + 2;
  simulator_options.max_rounds = static_cast<config::Round>(
      std::max<std::uint64_t>(simulator_options.max_rounds, needed_horizon));

  const radio::RunResult run =
      radio::simulate(configuration, drip, simulator_options, scratch.simulator);
  report.simulated = true;
  report.global_rounds = run.rounds_executed;
  report.local_rounds = report.schedule->total_rounds();
  report.stats = run.stats;

  // Verification: termination discipline + decision correctness.
  bool valid = run.all_terminated;
  for (const auto& node : run.nodes) {
    valid = valid && node.terminated && node.done_round == report.schedule->total_rounds() &&
            !node.forced_wake;  // Lemma 3.6: patient ⇒ all wakeups spontaneous
  }
  const auto leaders = run.leaders();
  if (report.feasible) {
    valid = valid && leaders.size() == 1 && leaders.front() == report.classification.leader;
    if (leaders.size() == 1) {
      report.leader = leaders.front();
    }
  } else {
    valid = valid && leaders.empty();
  }
  report.valid = valid;
  return report;
}

}  // namespace arl::core
