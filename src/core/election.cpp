#include "core/election.hpp"

#include "core/protocol.hpp"

namespace arl::core {

ElectionReport elect(const config::Configuration& configuration, const ElectionOptions& options) {
  ElectionScratch scratch;
  return elect(configuration, options, scratch);
}

ElectionReport elect(const config::Configuration& configuration, const ElectionOptions& options,
                     ElectionScratch& scratch) {
  // The canonical pipeline lives behind the protocol registry now; elect()
  // is the source-compatible entry point for canonical-only callers.
  const ProtocolSpec spec =
      options.simulate ? ProtocolSpec::canonical() : ProtocolSpec::classify_only();
  return run_protocol(configuration, spec, options, scratch);
}

}  // namespace arl::core
