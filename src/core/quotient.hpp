#pragma once

/// \file quotient.hpp
/// Symmetry analysis of a configuration via its stable partition.
///
/// Classifier's terminal partition groups nodes that no deterministic
/// anonymous protocol can ever tell apart (Lemma 3.9 + Lemma 3.14: the
/// canonical DRIP separates nodes at least as well as any DRIP).  The
/// quotient view makes this actionable for a deployment planner:
///   - the orbits (equivalence classes) of interchangeable nodes,
///   - the quotient multigraph-as-graph over the orbits,
///   - which orbits could serve as leaders (singletons).
/// For an infeasible configuration the orbit report explains *why* election
/// fails — every orbit has two or more pairwise-indistinguishable nodes.

#include <vector>

#include "config/configuration.hpp"
#include "core/classifier.hpp"

namespace arl::core {

/// One orbit: a maximal set of mutually indistinguishable nodes.  Note that
/// orbit members need NOT share a wakeup tag: indistinguishability is about
/// *local* histories, and nodes waking at different global times can live
/// through identical local experiences (e.g. the interior nodes of a
/// staggered path all share one orbit despite pairwise distinct tags).
struct Orbit {
  ClassId id = 0;                      ///< stable class number
  std::vector<graph::NodeId> members;  ///< nodes in the orbit, ascending
};

/// Symmetry summary of a configuration.
struct SymmetryReport {
  /// Orbits sorted by class id; singletons first distinguishes nothing, so
  /// order follows the classifier's numbering.
  std::vector<Orbit> orbits;

  /// Quotient graph: one vertex per orbit (indexed as in `orbits`), an edge
  /// when any two member nodes are adjacent.
  graph::Graph quotient;

  /// Indices into `orbits` of singleton orbits (the electable nodes).
  std::vector<std::size_t> singleton_orbits;

  /// True iff some orbit is a singleton (== the configuration is feasible).
  [[nodiscard]] bool feasible() const { return !singleton_orbits.empty(); }
};

/// Computes the symmetry report from a finished classification.
[[nodiscard]] SymmetryReport analyze_symmetry(const config::Configuration& configuration,
                                              const ClassifierResult& classification);

/// Convenience: classify (hashed) and analyze.
[[nodiscard]] SymmetryReport analyze_symmetry(const config::Configuration& configuration);

}  // namespace arl::core
