#pragma once

/// \file fast_classifier.hpp
/// Hash-bucket variant of the Classifier (ablation E10).
///
/// Replaces Algorithm 2's rep-scan refinement — O(n²Δ) per iteration — with
/// hashed (old class, label) buckets — O(nΔ) expected per iteration.  The
/// output (verdict, per-iteration partitions, class numbering, reps, leader)
/// is bit-for-bit identical to `Classifier`: buckets are pre-seeded with the
/// previous representatives so surviving classes keep their numbers, and new
/// classes are opened in the same fixed vertex order.  The equivalence is
/// enforced by differential tests over exhaustive and random configurations.

#include "core/classifier.hpp"

namespace arl::core {

/// Drop-in replacement for `Classifier` with hashed refinement.
class FastClassifier {
 public:
  /// Same channel-model parameter as Classifier.
  explicit FastClassifier(radio::ChannelModel model = radio::ChannelModel::CollisionDetection)
      : model_(model) {}

  /// Runs the classification; same result contract as Classifier::run.
  [[nodiscard]] ClassifierResult run(const config::Configuration& configuration) const;

 private:
  radio::ChannelModel model_;
};

}  // namespace arl::core
