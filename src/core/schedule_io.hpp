#pragma once

/// \file schedule_io.hpp
/// Serialization for compiled canonical schedules and Classifier runs.
///
/// A dedicated leader election algorithm is DATA: the list sequence L_j plus
/// the leader signature.  In a deployment, a planner with knowledge of the
/// configuration runs Classifier once, serializes the schedule, and flashes
/// the same bytes onto every (anonymous) device.  The text format:
///
///     arl-schedule v1
///     sigma <σ>
///     model <cd|nocd>
///     feasible <0|1>
///     leader <old_class> <label>        (only when feasible)
///     phases <T>
///     phase <num_classes>               (T times, followed by its entries)
///     entry <old_class> <k> <a b c>*    (c is 1 or *)
///
/// The companion classification format serializes the full Classifier run
/// (every iteration's partition, labels and representatives) — what a keyed
/// artifact store must persist alongside the schedule so a preloaded entry
/// reproduces a fresh compile bit for bit (iteration and step counts are
/// part of every job outcome):
///
///     arl-classification v1
///     model <cd|nocd>
///     verdict <feasible|infeasible>
///     iterations <k>
///     leader <class> <node>             (only when feasible)
///     steps <basic-operation count>
///     record <num_classes> <n>          (k times, followed by its body)
///     classes <c_0> ... <c_{n-1}>
///     label <k> <a b c>*                (n lines, one per node; c is 1 or *)
///     reps <r_1> ... <r_num_classes>
///
/// Lines starting with '#' and blank lines are ignored in both formats.

#include <iosfwd>
#include <string>

#include "core/classifier.hpp"
#include "core/schedule.hpp"

namespace arl::core {

/// Writes the text representation.
void schedule_to_text(const CanonicalSchedule& schedule, std::ostream& out);

/// Renders to a string.
[[nodiscard]] std::string schedule_to_text_string(const CanonicalSchedule& schedule);

/// Parses the text representation; throws ContractViolation on malformed
/// input (bad counts, unsorted labels, out-of-range classes, ...).
[[nodiscard]] CanonicalSchedule schedule_from_text(std::istream& in);

/// Parses from a string.
[[nodiscard]] CanonicalSchedule schedule_from_text_string(const std::string& text);

/// Stable 64-bit content digest of a compiled schedule — the artifact-level
/// twin of `config::fingerprint`: two schedules digest equal iff every field
/// the canonical DRIP consumes (σ, model, feasibility, leader signature and
/// the full list sequence L_j) is equal, so a text round-trip preserves the
/// fingerprint and a keyed artifact store can verify a deserialized schedule
/// against its key (asserted by tests/test_scenarios.cpp).
[[nodiscard]] std::uint64_t schedule_fingerprint(const CanonicalSchedule& schedule);

/// Writes the classification text representation (format above).
void classification_to_text(const ClassifierResult& result, std::ostream& out);

/// Renders a classification to a string.
[[nodiscard]] std::string classification_to_text_string(const ClassifierResult& result);

/// Parses the classification text representation; throws ContractViolation
/// on malformed input (wrong counts, unsorted labels, inconsistent node
/// counts across records, ...).  `classification_from_text(
/// classification_to_text(r)) == r` field for field.
[[nodiscard]] ClassifierResult classification_from_text(std::istream& in);

/// Parses a classification from a string.
[[nodiscard]] ClassifierResult classification_from_text_string(const std::string& text);

/// Stable 64-bit content digest of a Classifier run — domain-separated from
/// both `config::fingerprint` and `schedule_fingerprint`, covering every
/// field a preloaded artifact must reproduce (verdict, model, every
/// iteration record, leader, steps).  A text round trip preserves it.
[[nodiscard]] std::uint64_t classification_fingerprint(const ClassifierResult& result);

}  // namespace arl::core
