#pragma once

/// \file schedule_io.hpp
/// Serialization for compiled canonical schedules.
///
/// A dedicated leader election algorithm is DATA: the list sequence L_j plus
/// the leader signature.  In a deployment, a planner with knowledge of the
/// configuration runs Classifier once, serializes the schedule, and flashes
/// the same bytes onto every (anonymous) device.  The text format:
///
///     arl-schedule v1
///     sigma <σ>
///     model <cd|nocd>
///     feasible <0|1>
///     leader <old_class> <label>        (only when feasible)
///     phases <T>
///     phase <num_classes>               (T times, followed by its entries)
///     entry <old_class> <k> <a b c>*    (c is 1 or *)
///
/// Lines starting with '#' and blank lines are ignored.

#include <iosfwd>
#include <string>

#include "core/schedule.hpp"

namespace arl::core {

/// Writes the text representation.
void schedule_to_text(const CanonicalSchedule& schedule, std::ostream& out);

/// Renders to a string.
[[nodiscard]] std::string schedule_to_text_string(const CanonicalSchedule& schedule);

/// Parses the text representation; throws ContractViolation on malformed
/// input (bad counts, unsorted labels, out-of-range classes, ...).
[[nodiscard]] CanonicalSchedule schedule_from_text(std::istream& in);

/// Parses from a string.
[[nodiscard]] CanonicalSchedule schedule_from_text_string(const std::string& text);

/// Stable 64-bit content digest of a compiled schedule — the artifact-level
/// twin of `config::fingerprint`: two schedules digest equal iff every field
/// the canonical DRIP consumes (σ, model, feasibility, leader signature and
/// the full list sequence L_j) is equal, so a text round-trip preserves the
/// fingerprint and a keyed artifact store can verify a deserialized schedule
/// against its key (asserted by tests/test_scenarios.cpp).
[[nodiscard]] std::uint64_t schedule_fingerprint(const CanonicalSchedule& schedule);

}  // namespace arl::core
