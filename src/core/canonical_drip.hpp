#pragma once

/// \file canonical_drip.hpp
/// The canonical DRIP D_G (paper §3.3.1) as an executable protocol.
///
/// Every node runs the same program, parameterized only by the schedule (the
/// list sequence L_j) compiled from a Classifier run.  Execution structure,
/// per node and per phase P_j:
///   - the phase spans numClasses_j transmission blocks of 2σ+1 rounds each,
///     followed by σ listening rounds;
///   - the node transmits '1' exactly once, in local round σ+1 of block
///     `tBlock`, and listens otherwise;
///   - at the phase boundary it recomputes `tBlock` by matching its observed
///     phase history (equivalently, the label the Partitioner would assign
///     it) against the entries of the next list;
///   - when the lists end (L_{T+1} = "terminate") it terminates, and — when
///     the schedule is feasible — declares itself leader iff its last-phase
///     signature equals the embedded leader signature.
///
/// In strict mode (default) any deviation from the behaviour the lemmas of
/// §3.3.2 guarantee (collision on a foreign payload, noise in the trailing σ
/// rounds, no matching list entry) is a contract violation — running the
/// protocol is then itself a machine-checked validation of Lemmas 3.6-3.9.
/// In robust mode the program instead terminates un-elected and raises a
/// `failed` flag; the §4 experiments use this to run canonical protocols on
/// configurations they were NOT compiled for (Proposition 4.4).

#include <memory>

#include "core/schedule.hpp"
#include "radio/program.hpp"

namespace arl::core {

/// Behaviour on observations the schedule cannot explain.
enum class MismatchPolicy : std::uint8_t {
  Strict,  ///< contract violation (the run must be schedule-conformant)
  Robust,  ///< terminate un-elected and record the failure
};

/// The canonical protocol for one compiled schedule.
class CanonicalDrip final : public radio::Drip {
 public:
  /// Shares ownership of the schedule across all node programs.
  explicit CanonicalDrip(std::shared_ptr<const CanonicalSchedule> schedule,
                         MismatchPolicy policy = MismatchPolicy::Strict);

  [[nodiscard]] std::unique_ptr<radio::NodeProgram> instantiate(
      const radio::NodeEnv& env) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<std::size_t> history_window() const override;

  /// The schedule this protocol executes.
  [[nodiscard]] const CanonicalSchedule& schedule() const { return *schedule_; }

 private:
  std::shared_ptr<const CanonicalSchedule> schedule_;
  MismatchPolicy policy_;
};

/// Program state exposed for post-run inspection by experiments.
class CanonicalProgram final : public radio::NodeProgram {
 public:
  CanonicalProgram(std::shared_ptr<const CanonicalSchedule> schedule, MismatchPolicy policy);

  radio::Action decide(config::Round local_round, const radio::HistoryView& history) override;

  /// Listen-run lower bound for the simulator's fast path: inside a phase
  /// the program listens in every round except its single transmission
  /// round, and only mutates state at phase boundaries, so the streak runs
  /// to whichever of the two comes first.
  [[nodiscard]] config::Round listen_streak(config::Round local_round,
                                            const radio::HistoryView& history) override;

  [[nodiscard]] bool elected() const override { return elected_; }

  /// True when robust mode hit an observation the schedule cannot explain.
  [[nodiscard]] bool failed() const { return failed_; }

  /// Transmission block used in the most recently started phase.
  [[nodiscard]] ClassId transmission_block() const { return tblock_; }

 private:
  /// Reconstructs the label the Partitioner would assign from the just-
  /// finished phase's observations; flags schedule violations.
  [[nodiscard]] Label build_observed_label(std::size_t phase_index,
                                           const radio::HistoryView& history);

  /// Handles a schedule violation according to the policy.
  void fail(const char* reason);

  std::shared_ptr<const CanonicalSchedule> schedule_;
  MismatchPolicy policy_;
  std::size_t phase_ = 0;        ///< index of the phase currently executing
  std::uint64_t base_ = 0;       ///< local round before the current phase (r_{j-1})
  ClassId tblock_ = 1;           ///< transmission block for the current phase
  bool failed_ = false;
  bool done_ = false;
  bool elected_ = false;
};

}  // namespace arl::core
