#pragma once

/// \file protocol.hpp
/// The protocol axis as a first-class API: a value-typed `ProtocolSpec`
/// naming which election protocol to run (the paper's canonical DRIP, the
/// classify-only fast path, or one of the related-work baselines), a
/// string-keyed registry (`parse_protocol` / `registered_protocols`) and one
/// dispatch — `run_protocol` — that executes any spec on any configuration
/// and fills a uniform `ElectionReport`.
///
/// Why this exists: the paper's headline result (anonymous deterministic
/// election in Θ(n²σ)-scale time, exactly when wakeup asymmetry permits it)
/// only means something next to the landscape it contrasts with — labeled
/// O(log n) election (binary search / tree splitting, the folklore
/// algorithms behind its related-work bounds) and randomized decay election
/// on configurations the paper proves deterministically hopeless.  With
/// every protocol behind one spec, the batch engine runs head-to-head
/// cross-product sweeps, and "add a protocol" is a registry entry instead of
/// a new harness.
///
/// The labeled/randomized harness: labels (when the spec uses them and the
/// caller supplies none) are assigned from wakeup order — rank in the stable
/// (tag, node id) order — so the wakeup asymmetry the canonical protocol
/// exploits becomes the label asymmetry the baselines assume.  The run is
/// verified for termination and leader uniqueness, and the report carries an
/// explicit `Disposition` so a randomized no-leader run is a representable
/// outcome, not undefined behaviour.

#include <string>
#include <string_view>
#include <vector>

#include "core/election.hpp"

namespace arl::core {

/// Which election protocol a spec names.
enum class ProtocolKind : std::uint8_t {
  Canonical,     ///< classify + simulate the canonical DRIP + verify (the paper)
  ClassifyOnly,  ///< feasibility verdict only, no simulation
  BinarySearch,  ///< labeled deterministic bit-filter election, O(log n) rounds
  TreeSplit,     ///< labeled deterministic DFS tree-splitting election
  Randomized,    ///< anonymous randomized decay election (private coins)
};

/// A protocol plus its parameters — a value type, cheap to copy, compared
/// member-wise.  Construct via the factories or `parse_protocol`; the
/// defaults make `ProtocolSpec{}` the canonical protocol.
struct ProtocolSpec {
  static constexpr std::uint32_t kDefaultMaxSlots = 2048;

  ProtocolKind kind = ProtocolKind::Canonical;

  /// Label universe width for the labeled kinds; 0 (the default) auto-sizes
  /// to the smallest width whose universe covers the configuration.
  unsigned label_bits = 0;

  /// Slot guard for the randomized kind (forces termination even when no
  /// slot ever succeeds).
  std::uint32_t max_slots = kDefaultMaxSlots;

  [[nodiscard]] static ProtocolSpec canonical() { return {}; }
  [[nodiscard]] static ProtocolSpec classify_only() { return {ProtocolKind::ClassifyOnly}; }
  [[nodiscard]] static ProtocolSpec binary_search(unsigned label_bits = 0) {
    return {ProtocolKind::BinarySearch, label_bits};
  }
  [[nodiscard]] static ProtocolSpec tree_split(unsigned label_bits = 0) {
    return {ProtocolKind::TreeSplit, label_bits};
  }
  [[nodiscard]] static ProtocolSpec randomized(std::uint32_t max_slots = kDefaultMaxSlots) {
    return {ProtocolKind::Randomized, 0, max_slots};
  }

  /// Registry key, round-trippable through parse_protocol: "canonical",
  /// "classify", "binary-search", "tree-split", "randomized", with a
  /// ":value" suffix when a parameter differs from its default (e.g.
  /// "binary-search:12", "randomized:64").
  [[nodiscard]] std::string name() const;

  /// One-line human description (name, model assumptions, parameters).
  [[nodiscard]] std::string describe() const;

  /// True when the protocol runs on the simulator (everything but classify).
  [[nodiscard]] bool simulates() const { return kind != ProtocolKind::ClassifyOnly; }

  /// True when the protocol runs the Classifier (a feasibility verdict is
  /// only meaningful for these kinds).
  [[nodiscard]] bool classifies() const {
    return kind == ProtocolKind::Canonical || kind == ProtocolKind::ClassifyOnly;
  }

  /// True when the nodes receive distinct labels (the non-anonymous kinds).
  [[nodiscard]] bool uses_labels() const {
    return kind == ProtocolKind::BinarySearch || kind == ProtocolKind::TreeSplit;
  }

  /// True when the nodes flip private coins.
  [[nodiscard]] bool randomized_coins() const { return kind == ProtocolKind::Randomized; }

  friend bool operator==(const ProtocolSpec& a, const ProtocolSpec& b) = default;
};

/// The registered protocols, one spec per kind with default parameters, in
/// registry order.  `parse_protocol(p.name()) == p` for every entry
/// (asserted by tests/test_protocol.cpp).
[[nodiscard]] const std::vector<ProtocolSpec>& registered_protocols();

/// Comma-separated registry keys with parameter placeholders — the list CLI
/// error messages show ("canonical, classify, binary-search[:BITS], ...").
[[nodiscard]] std::string protocol_names();

/// Parses a registry key, with an optional ":value" parameter suffix for the
/// parameterized kinds.  Throws support::ContractViolation naming the
/// registered protocols on an unknown key or malformed parameter.
[[nodiscard]] ProtocolSpec parse_protocol(std::string_view text);

/// Runs `spec` on `configuration` and fills a uniform report:
///  - Canonical / ClassifyOnly: today's elect() pipeline (classify, and for
///    the canonical kind compile + simulate + verify); `options.simulate` is
///    ignored — the spec kind decides.
///  - BinarySearch / TreeSplit / Randomized: the shared baseline harness —
///    assign labels from wakeup order (unless `options.simulator.labels`
///    overrides them), instantiate the Drip, simulate under a
///    protocol-derived horizon guard, and verify termination and leader
///    uniqueness.  No classification is run (`report.feasible` stays false
///    and `report.classification` is default-constructed).
/// The report's `protocol` is `spec.name()` and its `disposition` says what
/// happened; determinism: the outcome is a pure function of (configuration,
/// spec, options), so engine sweeps stay bit-identical across thread counts.
[[nodiscard]] ElectionReport run_protocol(const config::Configuration& configuration,
                                          const ProtocolSpec& spec,
                                          const ElectionOptions& options = {});

/// Same as run_protocol(), reusing `scratch`'s buffers instead of allocating.
[[nodiscard]] ElectionReport run_protocol(const config::Configuration& configuration,
                                          const ProtocolSpec& spec, const ElectionOptions& options,
                                          ElectionScratch& scratch);

}  // namespace arl::core
