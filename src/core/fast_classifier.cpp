#include "core/fast_classifier.hpp"

#include <unordered_map>
#include <utility>

#include "core/partition.hpp"
#include "support/assert.hpp"

namespace arl::core {

namespace {

/// FNV-1a over (old class, label triples).
struct BucketKey {
  ClassId old_class;
  const Label* label;

  friend bool operator==(const BucketKey& a, const BucketKey& b) {
    return a.old_class == b.old_class && *a.label == *b.label;
  }
};

struct BucketKeyHash {
  std::size_t operator()(const BucketKey& key) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t value) {
      h ^= value;
      h *= 0x100000001b3ULL;
    };
    mix(key.old_class);
    for (const auto& triple : *key.label) {
      mix(triple.cls);
      mix(triple.round);
      mix(triple.star ? 2 : 1);
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

ClassifierResult FastClassifier::run(const config::Configuration& configuration) const {
  const graph::NodeId n = configuration.size();
  ClassifierResult result;
  result.model = model_;

  std::vector<ClassId> clazz(n, 1);
  std::vector<graph::NodeId> reps(n + 1, 0);
  ClassId num_classes = 1;
  reps[1] = 0;

  const std::uint32_t max_iterations = (n + 1) / 2;
  for (std::uint32_t iteration = 1; iteration <= max_iterations; ++iteration) {
    const ClassId old_class_count = num_classes;
    std::vector<Label> labels = compute_labels(configuration, clazz, &result.steps, model_);

    // Refinement via hashed buckets keyed by (previous class, new label).
    // Pre-seeding with the previous representatives reproduces the paper's
    // class numbering: a node matching rep k's bucket keeps class k.
    std::unordered_map<BucketKey, ClassId, BucketKeyHash> buckets;
    buckets.reserve(2 * num_classes);
    for (ClassId k = 1; k <= num_classes; ++k) {
      buckets.emplace(BucketKey{k, &labels[reps[k]]}, k);
    }
    const std::vector<ClassId> old_class = clazz;
    for (graph::NodeId v = 0; v < n; ++v) {
      const BucketKey key{old_class[v], &labels[v]};
      const auto found = buckets.find(key);
      ++result.steps;
      if (found != buckets.end()) {
        clazz[v] = found->second;
      } else {
        ++num_classes;
        ARL_ASSERT(num_classes <= n, "cannot have more classes than nodes");
        clazz[v] = num_classes;
        reps[num_classes] = v;
        buckets.emplace(BucketKey{old_class[v], &labels[v]}, num_classes);
      }
    }

    IterationRecord record;
    record.clazz = clazz;
    record.labels = std::move(labels);
    record.reps.assign(reps.begin() + 1, reps.begin() + 1 + num_classes);
    record.num_classes = num_classes;
    result.records.push_back(std::move(record));
    result.iterations = iteration;

    if (const auto singleton = find_singleton(clazz, num_classes)) {
      result.verdict = Verdict::Feasible;
      result.leader_class = singleton->first;
      result.leader = singleton->second;
      return result;
    }
    if (num_classes == old_class_count) {
      result.verdict = Verdict::Infeasible;
      return result;
    }
  }

  ARL_ASSERT(false, "FastClassifier failed to terminate within ceil(n/2) iterations");
  return result;
}

}  // namespace arl::core
