#pragma once

/// \file classifier.hpp
/// The centralized feasibility decision algorithm (paper §3.1, Algorithms
/// 1-4) and its result record.
///
/// `Classifier::run` decides whether a configuration is feasible — whether
/// any deterministic distributed algorithm can elect a leader on it — in
/// O(n³Δ) time (Lemma 3.5, Theorem 3.17).  The run records every iteration's
/// partition, labels and class representatives; those records are exactly
/// the list sequence L_j from which the canonical DRIP (§3.3.1) is compiled,
/// so a "Yes" answer doubles as a constructive leader election algorithm.

#include <cstdint>
#include <vector>

#include "config/configuration.hpp"
#include "core/label.hpp"
#include "graph/graph.hpp"
#include "radio/message.hpp"

namespace arl::core {

/// Decision outcome.
enum class Verdict : std::uint8_t {
  Feasible,    ///< Classifier output "Yes": leader election is possible
  Infeasible,  ///< Classifier output "No": the partition stabilized without a singleton
};

/// Snapshot of the augmented configuration after one Partitioner iteration.
struct IterationRecord {
  /// Class of each node at the end of this iteration (the paper's
  /// vCLASS,j+1 when this is iteration j).
  std::vector<ClassId> clazz;

  /// Label assigned to each node during this iteration (the paper's vLBL).
  std::vector<Label> labels;

  /// reps[k-1] = representative node of class k at the end of the iteration.
  std::vector<graph::NodeId> reps;

  /// Number of classes at the end of the iteration.
  ClassId num_classes = 0;

  friend bool operator==(const IterationRecord& a, const IterationRecord& b) = default;
};

/// Full result of a Classifier run.
struct ClassifierResult {
  Verdict verdict = Verdict::Infeasible;

  /// Channel model the run assumed (labels depend on it).
  radio::ChannelModel model = radio::ChannelModel::CollisionDetection;

  /// Number of Partitioner iterations executed (the paper's exit iteration;
  /// always in [1, ceil(n/2)] by Lemma 3.4).
  std::uint32_t iterations = 0;

  /// records[j-1] describes the state after iteration j.
  std::vector<IterationRecord> records;

  /// When feasible: the smallest singleton class m̂ at the exit iteration...
  ClassId leader_class = 0;

  /// ...and the unique node in it (the elected leader of the canonical DRIP).
  graph::NodeId leader = 0;

  /// Basic-operation counter (label construction + label comparisons), for
  /// validating the O(n³Δ) bound of Lemma 3.5.
  std::uint64_t steps = 0;

  friend bool operator==(const ClassifierResult& a, const ClassifierResult& b) = default;

  [[nodiscard]] bool feasible() const { return verdict == Verdict::Feasible; }

  /// Classes at the end of iteration j (j >= 1); j = 0 gives the initial
  /// all-ones partition.
  [[nodiscard]] std::vector<ClassId> classes_after(std::uint32_t j) const;

  /// Number of classes at the end of iteration j (j = 0 → 1).
  [[nodiscard]] ClassId num_classes_after(std::uint32_t j) const;
};

/// Paper-faithful implementation of Algorithms 1-4 (rep-scan Refine).
class Classifier {
 public:
  /// The paper's model has collision detection; NoCollisionDetection is the
  /// weaker-feedback extension (see ChannelModel) under which collided
  /// slots carry no information.
  explicit Classifier(radio::ChannelModel model = radio::ChannelModel::CollisionDetection)
      : model_(model) {}

  /// Runs Classifier on `configuration` (Algorithm 4).
  [[nodiscard]] ClassifierResult run(const config::Configuration& configuration) const;

  /// The channel model the classification assumes.
  [[nodiscard]] radio::ChannelModel model() const { return model_; }

 private:
  radio::ChannelModel model_;
};

}  // namespace arl::core
