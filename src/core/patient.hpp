#pragma once

/// \file patient.hpp
/// The patience transformation of Lemma 3.12.
///
/// Given any DRIP D, the wrapped protocol D_pat listens for the first
/// s_w = min(σ, rcv_w) local rounds (rcv_w = first local round in which a
/// message is received) and then simulates D on the history suffix starting
/// at s_w:  D_pat(H[0..i-1]) = D(H[s_w..i-1]).  A clean message during the
/// waiting window plays the role of D's forced wakeup; a silent timeout
/// plays the spontaneous one.  When all nodes run D_pat, no node transmits
/// in global rounds 0..σ (Claim 1), every node wakes spontaneously, and each
/// node's inner history — hence its decision — is exactly what D would have
/// produced (Claim 2).  The decision function is inherited from the inner
/// protocol on the shifted history (f_pat of the lemma).

#include <memory>

#include "config/configuration.hpp"
#include "radio/program.hpp"

namespace arl::core {

/// Wraps an arbitrary protocol into a patient one for a given span σ.
class PatientWrapper final : public radio::Drip {
 public:
  /// `inner` is the protocol D; `sigma` the span the wrapper must outlast.
  PatientWrapper(std::shared_ptr<const radio::Drip> inner, config::Tag sigma);

  [[nodiscard]] std::unique_ptr<radio::NodeProgram> instantiate(
      const radio::NodeEnv& env) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<std::size_t> history_window() const override;

 private:
  std::shared_ptr<const radio::Drip> inner_;
  config::Tag sigma_;
};

}  // namespace arl::core
