#include "dist/merge.hpp"

#include <algorithm>
#include <utility>

namespace arl::dist {

namespace {

std::string describe_mismatch(const char* field, const std::string& a, const std::string& b) {
  return std::string("shard reports are from different sweeps: ") + field + " '" + a +
         "' vs '" + b + "'";
}

/// Verifies that `shard` names the same sweep as `reference`.
void check_same_sweep(const SweepKey& reference, const SweepKey& key) {
  if (key.digest != reference.digest || key.description != reference.description) {
    throw MergeError(
        describe_mismatch("sweep", reference.description, key.description));
  }
  if (key.seed != reference.seed) {
    throw MergeError(describe_mismatch("seed", std::to_string(reference.seed),
                                       std::to_string(key.seed)));
  }
  if (key.total_jobs != reference.total_jobs) {
    throw MergeError(describe_mismatch("job count", std::to_string(reference.total_jobs),
                                       std::to_string(key.total_jobs)));
  }
  if (key.fault != reference.fault) {
    throw MergeError(describe_mismatch("fault", reference.fault, key.fault));
  }
  if (key.protocols != reference.protocols) {
    const auto join = [](const std::vector<std::string>& names) {
      std::string joined;
      for (const std::string& name : names) {
        if (!joined.empty()) {
          joined += ',';
        }
        joined += name;
      }
      return joined;
    };
    throw MergeError(describe_mismatch("protocols", join(reference.protocols),
                                       join(key.protocols)));
  }
}

}  // namespace

ShardReport merge_shards(const std::vector<ShardReport>& shards) {
  if (shards.empty()) {
    throw MergeError("nothing to merge: no shard reports given");
  }

  ShardReport merged;
  merged.key = shards.front().key;

  // Collect every range, then sort and check disjointness: overlap anywhere
  // means two shards claim the same job, and their outcomes must not be
  // double-counted (or worse, silently deduplicated).
  for (const ShardReport& shard : shards) {
    check_same_sweep(merged.key, shard.key);
    merged.ranges.insert(merged.ranges.end(), shard.ranges.begin(), shard.ranges.end());
  }
  std::sort(merged.ranges.begin(), merged.ranges.end(),
            [](const JobRange& a, const JobRange& b) { return a.begin < b.begin; });
  for (std::size_t i = 1; i < merged.ranges.size(); ++i) {
    if (merged.ranges[i].begin < merged.ranges[i - 1].end) {
      throw MergeError("shard job ranges overlap at job " +
                       std::to_string(merged.ranges[i].begin) +
                       " — the same jobs were run twice");
    }
  }
  // Coalesce adjacent ranges so the merged cover is in normal form (the
  // wire format requires it, and it makes merge order unobservable).
  std::vector<JobRange> coalesced;
  for (const JobRange& range : merged.ranges) {
    if (!coalesced.empty() && coalesced.back().end == range.begin) {
      coalesced.back().end = range.end;
    } else {
      coalesced.push_back(range);
    }
  }
  merged.ranges = std::move(coalesced);

  // Reassemble outcomes in global job-id order and refold the aggregates —
  // the same fold a single-process batch runs, so the merged report cannot
  // drift from the unsharded one.
  std::size_t total = 0;
  for (const ShardReport& shard : shards) {
    total += shard.report.jobs.size();
  }
  merged.report.jobs.reserve(total);
  for (const ShardReport& shard : shards) {
    merged.report.jobs.insert(merged.report.jobs.end(), shard.report.jobs.begin(),
                              shard.report.jobs.end());
  }
  std::sort(merged.report.jobs.begin(), merged.report.jobs.end(),
            [](const engine::JobOutcome& a, const engine::JobOutcome& b) { return a.id < b.id; });
  engine::aggregate_outcomes(merged.report);
  // aggregate_outcomes folds jobs only; the fault plan is sweep identity and
  // travels via the key (check_same_sweep proved every shard agrees).
  merged.report.fault = shards.front().report.fault;

  // Execution circumstances: wall time sums (total compute spent), the
  // worker count reports the widest shard, cache counters sum when present.
  for (const ShardReport& shard : shards) {
    merged.report.wall_millis += shard.report.wall_millis;
    merged.report.threads_used = std::max(merged.report.threads_used,
                                          shard.report.threads_used);
    if (shard.report.cache) {
      engine::ScheduleCacheStats cache = merged.report.cache.value_or(engine::ScheduleCacheStats{});
      cache.hits += shard.report.cache->hits;
      cache.misses += shard.report.cache->misses;
      cache.evictions += shard.report.cache->evictions;
      cache.schedule_builds += shard.report.cache->schedule_builds;
      // `entries` is a point-in-time residency gauge, not a monotonic
      // counter: summing would overstate residency K-fold when shards cache
      // the same configurations, so report the largest shard's residency.
      cache.entries = std::max(cache.entries, shard.report.cache->entries);
      merged.report.cache = cache;
    }
  }
  return merged;
}

engine::BatchReport complete_report(ShardReport merged) {
  const bool complete = merged.key.total_jobs == 0
                            ? merged.ranges.empty()
                            : merged.ranges.size() == 1 && merged.ranges[0].begin == 0 &&
                                  merged.ranges[0].end == merged.key.total_jobs;
  if (!complete) {
    std::string covered;
    for (const JobRange& range : merged.ranges) {
      if (!covered.empty()) {
        covered += ' ';
      }
      covered += '[';
      covered += std::to_string(range.begin);
      covered += ", ";
      covered += std::to_string(range.end);
      covered += ')';
    }
    throw MergeError("shards do not cover the sweep: jobs [0, " +
                     std::to_string(merged.key.total_jobs) + ") needed, got " +
                     (covered.empty() ? std::string("nothing") : covered));
  }
  return std::move(merged.report);
}

std::vector<JobRange> missing_ranges(const ShardReport& merged) {
  // merge_shards leaves `ranges` sorted, disjoint and coalesced; walking
  // the cursor across them yields the complement directly.
  std::vector<JobRange> missing;
  engine::JobId cursor = 0;
  for (const JobRange& range : merged.ranges) {
    if (cursor < range.begin) {
      missing.push_back({cursor, range.begin});
    }
    cursor = range.end;
  }
  if (cursor < merged.key.total_jobs) {
    missing.push_back({cursor, merged.key.total_jobs});
  }
  return missing;
}

}  // namespace arl::dist
