#include "dist/report_io.hpp"

#include <iomanip>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <utility>

#include "engine/workload.hpp"
#include "fault/fault.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"
#include "support/line_io.hpp"
#include "support/parse.hpp"

namespace arl::dist {

namespace {

/// Stable tokens for Disposition on the wire (single words, unlike the
/// spaced display names from core::to_string).
const char* disposition_token(core::Disposition disposition) {
  switch (disposition) {
    case core::Disposition::NotSimulated:
      return "not-simulated";
    case core::Disposition::Elected:
      return "elected";
    case core::Disposition::NoLeader:
      return "no-leader";
    case core::Disposition::Failed:
      return "failed";
    case core::Disposition::DetectedFault:
      return "detected-fault";
  }
  return "?";
}

core::Disposition parse_disposition(const std::string& token) {
  if (token == "not-simulated") {
    return core::Disposition::NotSimulated;
  }
  if (token == "elected") {
    return core::Disposition::Elected;
  }
  if (token == "no-leader") {
    return core::Disposition::NoLeader;
  }
  if (token == "failed") {
    return core::Disposition::Failed;
  }
  if (token == "detected-fault") {
    return core::Disposition::DetectedFault;
  }
  throw ReportFormatError("unknown disposition '" + token + "'");
}

std::uint64_t parse_u64(const std::string& token, const char* what,
                        std::uint64_t max = std::numeric_limits<std::uint64_t>::max()) {
  // The strict decimal grammar is shared with the other line protocols
  // (support/parse.hpp); fields narrower than 64 bits reject out-of-range
  // values here instead of silently truncating in a cast.
  const std::optional<std::uint64_t> value = support::parse_decimal_u64(token, max);
  if (!value) {
    throw ReportFormatError(std::string(what) + " must be a decimal integer within its field " +
                            "range (got '" + token + "')");
  }
  return *value;
}

/// parse_u64 bounded to a 32-bit field.
std::uint32_t parse_u32(const std::string& token, const char* what) {
  return static_cast<std::uint32_t>(
      parse_u64(token, what, std::numeric_limits<std::uint32_t>::max()));
}

std::uint64_t parse_hex64(const std::string& token, const char* what) {
  if (token.size() != 16 || token.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw ReportFormatError(std::string(what) +
                            " must be 16 lowercase hex digits (got '" + token + "')");
  }
  std::uint64_t value = 0;
  for (const char c : token) {
    value = (value << 4) | static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  return value;
}

std::string hex64(std::uint64_t value) {
  // Called twice per job line when serializing — no per-call stream setup.
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

bool parse_bool(const std::string& token, const char* what) {
  if (token == "0") {
    return false;
  }
  if (token == "1") {
    return true;
  }
  throw ReportFormatError(std::string(what) + " must be 0 or 1 (got '" + token + "')");
}

double parse_double(const std::string& token, const char* what) {
  // Only the canonical non-negative finite spellings the writer emits —
  // digits[.digits][e[+-]digits] — are valid; std::stod alone would also
  // accept inf/nan/hexfloat/signs and let a hand-authored report smuggle
  // non-finite values through the wall-time sum.
  if (support::is_canonical_number(token)) {
    try {
      return std::stod(token);
    } catch (const std::exception&) {  // out_of_range on extreme exponents
    }
  }
  throw ReportFormatError(std::string(what) + " must be a canonical number (got '" + token +
                          "')");
}

core::ProtocolSpec parse_protocol_token(const std::string& token) {
  try {
    const core::ProtocolSpec spec = core::parse_protocol(token);
    if (spec.name() != token) {  // only canonical spellings are valid on the wire
      throw ReportFormatError("protocol '" + token + "' is not in canonical form (want '" +
                              spec.name() + "')");
    }
    return spec;
  } catch (const support::ContractViolation& error) {
    throw ReportFormatError(std::string("bad protocol: ") + error.what());
  }
}

/// Splits a line on single spaces; rejects empty fields (leading, trailing
/// or doubled separators) so the grammar has exactly one spelling.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    const std::size_t end = space == std::string::npos ? line.size() : space;
    if (end == start) {
      throw ReportFormatError("empty field in line '" + line + "'");
    }
    tokens.push_back(line.substr(start, end - start));
    if (space == std::string::npos) {
      break;
    }
    start = space + 1;
  }
  return tokens;
}

/// Line cursor over the whole input: read_shard_report slurps every line up
/// front so truncation (missing `end`) is distinguishable from stream
/// errors.  Framing goes through the shared bounded reader
/// (support/line_io.hpp) — the same splitter the sweep-service sessions use
/// on their sockets — so a line that never terminates is a format error
/// here, not an unbounded buffer.
class LineReader {
 public:
  explicit LineReader(std::istream& in) {
    try {
      lines_ = support::read_lines(in);
    } catch (const support::LineTooLong& error) {
      throw ReportFormatError(std::string("unframeable shard report: ") + error.what());
    }
  }

  [[nodiscard]] bool done() const { return next_ >= lines_.size(); }

  /// The next line without consuming it; throws on exhausted input.
  [[nodiscard]] const std::string& peek() const {
    if (done()) {
      throw ReportFormatError("truncated shard report (line " + std::to_string(next_ + 1) +
                              " missing)");
    }
    return lines_[next_];
  }

  [[nodiscard]] std::string take() {
    std::string line = peek();
    ++next_;
    return line;
  }

  /// Digest of the raw bytes of every line consumed before the current one
  /// — what the writer digested as the report body (each line with its
  /// '\n'), streamed so a large report is never concatenated into a second
  /// in-memory copy.  Must mirror support::hash_text: total length first, then
  /// every byte.
  [[nodiscard]] std::uint64_t digest_before_current(std::uint64_t seed) const {
    std::size_t length = 0;
    for (std::size_t i = 0; i + 1 < next_; ++i) {
      length += lines_[i].size() + 1;
    }
    support::Hash64 hash(seed);
    hash.absorb(length);
    for (std::size_t i = 0; i + 1 < next_; ++i) {
      for (const char c : lines_[i]) {
        hash.absorb(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
      }
      hash.absorb(static_cast<std::uint64_t>('\n'));
    }
    return hash.digest();
  }

 private:
  std::vector<std::string> lines_;
  std::size_t next_ = 0;
};

void write_stats(std::ostream& out, const radio::RunStats& stats) {
  out << ' ' << stats.transmissions << ' ' << stats.clean_receptions << ' '
      << stats.collisions_heard << ' ' << stats.forced_wakeups << ' ' << stats.node_rounds << ' '
      << stats.max_node_transmissions << ' ' << stats.max_node_awake_rounds << ' '
      << stats.injected_drops << ' ' << stats.injected_corruptions << ' '
      << stats.injected_crashes << ' ' << stats.delayed_wakeups;
}

radio::RunStats parse_stats(const std::vector<std::string>& tokens, std::size_t first) {
  radio::RunStats stats;
  stats.transmissions = parse_u64(tokens[first], "transmissions");
  stats.clean_receptions = parse_u64(tokens[first + 1], "clean receptions");
  stats.collisions_heard = parse_u64(tokens[first + 2], "collisions heard");
  stats.forced_wakeups = parse_u64(tokens[first + 3], "forced wakeups");
  stats.node_rounds = parse_u64(tokens[first + 4], "node rounds");
  stats.max_node_transmissions = parse_u64(tokens[first + 5], "max node transmissions");
  stats.max_node_awake_rounds = parse_u64(tokens[first + 6], "max node awake rounds");
  stats.injected_drops = parse_u64(tokens[first + 7], "injected drops");
  stats.injected_corruptions = parse_u64(tokens[first + 8], "injected corruptions");
  stats.injected_crashes = parse_u64(tokens[first + 9], "injected crashes");
  stats.delayed_wakeups = parse_u64(tokens[first + 10], "delayed wakeups");
  return stats;
}

}  // namespace

namespace {

/// Domain seed of the whole-report body digest on the `end` line (distinct
/// from the sweep-description digest domain).
constexpr std::uint64_t kBodyDigestSeed = 0xB0D7;

}  // namespace

std::uint64_t sweep_digest(std::string_view description) {
  // Domain-separated from config fingerprints; the seed is mirrored by
  // engine::WorkloadSpec::digest() so spec digests feed SweepKeys directly.
  return support::hash_text(description, /*seed=*/0xD157);
}

ShardReport make_shard_report(SweepKey key, JobRange range, engine::BatchReport report) {
  ARL_EXPECTS(range.end <= key.total_jobs, "shard range exceeds the sweep's job count");
  ARL_EXPECTS(report.jobs.size() == range.size(),
              "shard report must hold exactly the range's jobs");
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    ARL_EXPECTS(report.jobs[i].id == range.begin + i,
                "shard report jobs must carry the range's global ids");
  }
  ARL_EXPECTS(report.fault.name() == key.fault,
              "shard report fault must match the sweep key's fault");
  ShardReport shard;
  shard.key = std::move(key);
  if (!range.empty()) {
    shard.ranges.push_back(range);
  }
  shard.report = std::move(report);
  return shard;
}

void write_shard_report(const ShardReport& shard, std::ostream& sink) {
  // The body is assembled first so the trailing `end` line can carry its
  // content digest — the integrity check that makes every byte of the
  // report tamper-evident, not just the fields the breakdown cross-check
  // happens to cover.
  std::ostringstream buffer;
  std::ostream& out = buffer;
  out << "arl-shard-report " << kShardReportVersion << '\n';
  out << "sweep " << hex64(shard.key.digest) << ' ' << shard.key.description << '\n';
  out << "seed " << shard.key.seed << '\n';
  out << "jobs " << shard.key.total_jobs << '\n';
  if (shard.key.fault != "none") {
    // Canonical absence: the inactive fault is never spelled out, so every
    // fault-free report has exactly one byte sequence (and version-2 readers
    // treat a missing line as `none`).
    out << "fault " << shard.key.fault << '\n';
  }
  for (const JobRange& range : shard.ranges) {
    out << "range " << range.begin << ' ' << range.end << '\n';
  }
  for (const std::string& protocol : shard.key.protocols) {
    out << "protocol " << protocol << '\n';
  }
  out << "threads " << shard.report.threads_used << '\n';
  {
    // Round-trippable double, formatted without touching `out`'s stream state.
    std::ostringstream wall;
    wall << std::setprecision(std::numeric_limits<double>::max_digits10)
         << shard.report.wall_millis;
    out << "wall-ms " << wall.str() << '\n';
  }
  if (shard.report.cache) {
    const engine::ScheduleCacheStats& cache = *shard.report.cache;
    out << "cache " << cache.hits << ' ' << cache.misses << ' ' << cache.evictions << ' '
        << cache.schedule_builds << ' ' << cache.entries << '\n';
  }
  for (const engine::JobOutcome& job : shard.report.jobs) {
    out << "job " << job.id << ' ' << job.protocol.name() << ' '
        << disposition_token(job.disposition) << ' ' << job.nodes << ' ' << job.span << ' '
        << (job.feasible ? 1 : 0) << ' ' << (job.simulated ? 1 : 0) << ' '
        << (job.valid ? 1 : 0) << ' ';
    if (job.leader) {
      out << *job.leader;
    } else {
      out << '-';
    }
    out << ' ' << job.classifier_iterations << ' ' << job.classifier_steps << ' '
        << job.local_rounds << ' ' << job.global_rounds << ' ' << hex64(job.config_fingerprint);
    write_stats(out, job.stats);
    out << '\n';
  }
  for (const engine::ProtocolBreakdown& row : shard.report.by_protocol) {
    out << "breakdown " << row.protocol.name() << ' ' << row.jobs << ' ' << row.feasible << ' '
        << row.valid << ' ' << row.elected << ' ' << row.no_leader << ' ' << row.failed << ' '
        << row.detected_fault << ' ' << row.total_local_rounds << ' ' << row.max_local_rounds;
    write_stats(out, row.stats);
    out << '\n';
  }
  const std::string body = std::move(buffer).str();  // extract, don't copy
  sink << body << "end " << shard.report.jobs.size() << ' '
       << hex64(support::hash_text(body, kBodyDigestSeed)) << '\n';
}

ShardReport read_shard_report(std::istream& in) {
  LineReader lines(in);
  ShardReport shard;

  // Header: version, sweep identity, seed, total job count.
  {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 2 || tokens[0] != "arl-shard-report") {
      throw ReportFormatError("not a shard report (missing 'arl-shard-report <version>' line)");
    }
    const std::uint64_t version = parse_u64(tokens[1], "version");
    if (version != kShardReportVersion) {
      throw ReportFormatError("unsupported shard report version " + tokens[1] + " (this build " +
                              "reads version " + std::to_string(kShardReportVersion) + ")");
    }
  }
  {
    const std::string line = lines.take();
    if (line.rfind("sweep ", 0) != 0) {
      throw ReportFormatError("expected the 'sweep' line, got '" + line + "'");
    }
    const std::size_t digest_end = line.find(' ', 6);
    if (digest_end == std::string::npos || digest_end + 1 >= line.size()) {
      throw ReportFormatError("sweep line needs a digest and a description: '" + line + "'");
    }
    shard.key.digest = parse_hex64(line.substr(6, digest_end - 6), "sweep digest");
    shard.key.description = line.substr(digest_end + 1);
    if (sweep_digest(shard.key.description) != shard.key.digest) {
      throw ReportFormatError("sweep digest does not match its description (corrupted header?)");
    }
    // Workload identity is re-parsed, never trusted as an opaque string: the
    // description must be the canonical spelling of a registered workload,
    // so two reports merge only when the registry itself equates them.
    try {
      const engine::WorkloadSpec workload = engine::parse_workload(shard.key.description);
      if (workload.name() != shard.key.description) {
        throw ReportFormatError("workload '" + shard.key.description +
                                "' is not in canonical form (want '" + workload.name() + "')");
      }
    } catch (const support::ContractViolation& error) {
      throw ReportFormatError(std::string("bad workload: ") + error.what());
    }
  }
  {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 2 || tokens[0] != "seed") {
      throw ReportFormatError("expected the 'seed' line");
    }
    shard.key.seed = parse_u64(tokens[1], "seed");
  }
  {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 2 || tokens[0] != "jobs") {
      throw ReportFormatError("expected the 'jobs' line");
    }
    shard.key.total_jobs = parse_u64(tokens[1], "total job count");
  }

  // Optional fault plan; absent means `none` (canonical absence).  Like the
  // workload, the spelling is re-parsed through the registry — only the
  // canonical name of a registered fault is valid on the wire.
  if (!lines.done() && lines.peek().rfind("fault ", 0) == 0) {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 2) {
      throw ReportFormatError("fault line must be 'fault <name>'");
    }
    try {
      const fault::FaultSpec spec = fault::parse_fault(tokens[1]);
      if (spec.name() != tokens[1]) {
        throw ReportFormatError("fault '" + tokens[1] + "' is not in canonical form (want '" +
                                spec.name() + "')");
      }
      if (!spec.active()) {
        throw ReportFormatError("inactive fault '" + tokens[1] +
                                "' must be spelled by omitting the fault line");
      }
      shard.key.fault = tokens[1];
      shard.report.fault = spec;
    } catch (const support::ContractViolation& error) {
      throw ReportFormatError(std::string("bad fault: ") + error.what());
    }
  }

  // Covered ranges: ascending, disjoint, coalesced, within [0, total).
  while (!lines.done() && lines.peek().rfind("range ", 0) == 0) {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 3) {
      throw ReportFormatError("range line must be 'range <begin> <end>'");
    }
    JobRange range{parse_u64(tokens[1], "range begin"), parse_u64(tokens[2], "range end")};
    if (range.begin >= range.end || range.end > shard.key.total_jobs) {
      throw ReportFormatError("range [" + tokens[1] + ", " + tokens[2] +
                              ") must be non-empty and within the sweep's jobs");
    }
    if (!shard.ranges.empty() && range.begin <= shard.ranges.back().end) {
      throw ReportFormatError("ranges must be ascending, disjoint and coalesced");
    }
    shard.ranges.push_back(range);
  }

  // The protocol axis.
  while (!lines.done() && lines.peek().rfind("protocol ", 0) == 0) {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 2) {
      throw ReportFormatError("protocol line must be 'protocol <name>'");
    }
    (void)parse_protocol_token(tokens[1]);
    shard.key.protocols.push_back(tokens[1]);
  }
  if (shard.key.protocols.empty()) {
    throw ReportFormatError("shard report declares no protocols");
  }

  // Execution circumstances (informational; never part of merge identity).
  {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 2 || tokens[0] != "threads") {
      throw ReportFormatError("expected the 'threads' line");
    }
    shard.report.threads_used = static_cast<std::size_t>(parse_u64(tokens[1], "threads"));
  }
  {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 2 || tokens[0] != "wall-ms") {
      throw ReportFormatError("expected the 'wall-ms' line");
    }
    shard.report.wall_millis = parse_double(tokens[1], "wall time");
  }
  if (!lines.done() && lines.peek().rfind("cache ", 0) == 0) {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 6) {
      throw ReportFormatError("cache line must carry exactly five counters");
    }
    engine::ScheduleCacheStats cache;
    cache.hits = parse_u64(tokens[1], "cache hits");
    cache.misses = parse_u64(tokens[2], "cache misses");
    cache.evictions = parse_u64(tokens[3], "cache evictions");
    cache.schedule_builds = parse_u64(tokens[4], "cache schedule builds");
    cache.entries = parse_u64(tokens[5], "cache entries");
    shard.report.cache = cache;
  }

  // Job lines: ids must enumerate the declared ranges exactly, in order.
  engine::JobId expected_jobs = 0;
  for (const JobRange& range : shard.ranges) {
    expected_jobs += range.size();
  }
  std::size_t range_index = 0;
  engine::JobId next_id = shard.ranges.empty() ? 0 : shard.ranges[0].begin;
  // No reserve(expected_jobs): the declared ranges are untrusted input, and
  // a forged range must fail the count check below as a format error — not
  // blow up an allocation first.  Amortized growth is plenty here.
  while (!lines.done() && lines.peek().rfind("job ", 0) == 0) {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 26) {
      throw ReportFormatError("job line must carry exactly 25 fields");
    }
    engine::JobOutcome job;
    job.id = parse_u64(tokens[1], "job id");
    if (range_index >= shard.ranges.size() || job.id != next_id) {
      throw ReportFormatError("job id " + tokens[1] +
                              " does not enumerate the declared ranges in order");
    }
    job.protocol = parse_protocol_token(tokens[2]);
    bool listed = false;
    for (const std::string& name : shard.key.protocols) {
      listed = listed || name == tokens[2];
    }
    if (!listed) {
      throw ReportFormatError("job protocol '" + tokens[2] +
                              "' is not in the declared protocol list");
    }
    job.disposition = parse_disposition(tokens[3]);
    job.nodes = parse_u32(tokens[4], "node count");
    job.span = parse_u32(tokens[5], "span");
    job.feasible = parse_bool(tokens[6], "feasible");
    job.simulated = parse_bool(tokens[7], "simulated");
    job.valid = parse_bool(tokens[8], "valid");
    if (tokens[9] != "-") {
      job.leader = parse_u32(tokens[9], "leader");
    }
    job.classifier_iterations = parse_u32(tokens[10], "classifier iterations");
    job.classifier_steps = parse_u64(tokens[11], "classifier steps");
    job.local_rounds = parse_u64(tokens[12], "local rounds");
    job.global_rounds = parse_u32(tokens[13], "global rounds");
    job.config_fingerprint = parse_hex64(tokens[14], "configuration fingerprint");
    job.stats = parse_stats(tokens, 15);
    shard.report.jobs.push_back(std::move(job));
    ++next_id;
    if (next_id == shard.ranges[range_index].end) {
      ++range_index;
      next_id = range_index < shard.ranges.size() ? shard.ranges[range_index].begin : 0;
    }
  }
  if (shard.report.jobs.size() != expected_jobs) {
    throw ReportFormatError("expected " + std::to_string(expected_jobs) + " job lines, found " +
                            std::to_string(shard.report.jobs.size()));
  }

  // Breakdown lines: must agree with the aggregation of the job lines (a
  // corrupted job field rarely survives this cross-check).
  std::vector<engine::ProtocolBreakdown> declared;
  while (!lines.done() && lines.peek().rfind("breakdown ", 0) == 0) {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 22) {
      throw ReportFormatError("breakdown line must carry exactly 21 fields");
    }
    engine::ProtocolBreakdown row;
    row.protocol = parse_protocol_token(tokens[1]);
    row.jobs = parse_u64(tokens[2], "breakdown jobs");
    row.feasible = parse_u64(tokens[3], "breakdown feasible");
    row.valid = parse_u64(tokens[4], "breakdown valid");
    row.elected = parse_u64(tokens[5], "breakdown elected");
    row.no_leader = parse_u64(tokens[6], "breakdown no-leader");
    row.failed = parse_u64(tokens[7], "breakdown failed");
    row.detected_fault = parse_u64(tokens[8], "breakdown detected-fault");
    row.total_local_rounds = parse_u64(tokens[9], "breakdown total local rounds");
    row.max_local_rounds = parse_u64(tokens[10], "breakdown max local rounds");
    row.stats = parse_stats(tokens, 11);
    declared.push_back(std::move(row));
  }
  {
    const std::vector<std::string> tokens = tokenize(lines.take());
    if (tokens.size() != 3 || tokens[0] != "end") {
      throw ReportFormatError("expected the 'end <count> <digest>' line");
    }
    if (parse_u64(tokens[1], "end count") != shard.report.jobs.size()) {
      throw ReportFormatError("end count disagrees with the job lines (truncated file?)");
    }
    // Whole-body integrity: every byte above this line is covered, so a
    // corrupted field that happens to still parse — a node count, a
    // fingerprint digit — is caught here instead of merging silently.
    const std::uint64_t declared = parse_hex64(tokens[2], "end digest");
    if (lines.digest_before_current(kBodyDigestSeed) != declared) {
      throw ReportFormatError("report body does not match its end-line digest (corrupted file?)");
    }
  }
  while (!lines.done()) {
    if (!lines.take().empty()) {
      throw ReportFormatError("trailing garbage after the 'end' line");
    }
  }

  engine::aggregate_outcomes(shard.report);
  if (shard.report.by_protocol != declared) {
    throw ReportFormatError("breakdown lines disagree with the job lines (corrupted file?)");
  }
  return shard;
}

}  // namespace arl::dist
