#include "dist/shard.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arl::dist {

std::string ShardSpec::name() const {
  return std::to_string(index) + "/" + std::to_string(count);
}

ShardSpec parse_shard(std::string_view text) {
  const auto fail = [&]() -> ShardSpec {
    throw support::ContractViolation("shard must be i/K with 0 <= i < K (got '" +
                                     std::string(text) + "')");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos || slash == 0 || slash + 1 == text.size()) {
    return fail();
  }
  const std::string_view index_text = text.substr(0, slash);
  const std::string_view count_text = text.substr(slash + 1);
  const auto parse_u32 = [&](std::string_view digits) -> std::uint32_t {
    if (digits.empty() || digits.size() > 9 ||
        digits.find_first_not_of("0123456789") != std::string_view::npos) {
      fail();
    }
    std::uint64_t value = 0;
    for (const char c : digits) {
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return static_cast<std::uint32_t>(value);
  };
  ShardSpec shard{parse_u32(index_text), parse_u32(count_text)};
  if (shard.count == 0 || shard.index >= shard.count) {
    return fail();
  }
  return shard;
}

JobRange parse_job_range(std::string_view text) {
  const auto fail = [&]() -> JobRange {
    throw support::ContractViolation("job range must be B-E with 0 <= B < E (got '" +
                                     std::string(text) + "')");
  };
  const std::size_t dash = text.find('-');
  if (dash == std::string_view::npos || dash == 0 || dash + 1 == text.size()) {
    return fail();
  }
  const auto parse_id = [&](std::string_view digits) -> engine::JobId {
    if (digits.empty() || digits.size() > 18 ||
        digits.find_first_not_of("0123456789") != std::string_view::npos) {
      fail();
    }
    std::uint64_t value = 0;
    for (const char c : digits) {
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return static_cast<engine::JobId>(value);
  };
  JobRange range{parse_id(text.substr(0, dash)), parse_id(text.substr(dash + 1))};
  if (range.begin >= range.end) {
    return fail();
  }
  return range;
}

JobRange shard_range(engine::JobId total_jobs, const ShardSpec& shard) {
  ARL_EXPECTS(shard.count >= 1 && shard.index < shard.count,
              "shard index must be in [0, count)");
  const engine::JobId base = total_jobs / shard.count;
  const engine::JobId extra = total_jobs % shard.count;  // first `extra` shards take one more
  const engine::JobId begin =
      shard.index * base + std::min<engine::JobId>(shard.index, extra);
  const engine::JobId size = base + (shard.index < extra ? 1 : 0);
  return {begin, begin + size};
}

std::vector<JobRange> shard_ranges(engine::JobId total_jobs, std::uint32_t count) {
  ARL_EXPECTS(count >= 1, "a plan needs at least one shard");
  std::vector<JobRange> ranges;
  ranges.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    ranges.push_back(shard_range(total_jobs, {i, count}));
  }
  return ranges;
}

}  // namespace arl::dist
