#pragma once

/// \file report_io.hpp
/// Versioned text wire format for shard reports.
///
/// A *shard report* is what one worker of a distributed sweep ships home:
/// the sweep's identity (the canonical workload name from the registry in
/// engine/workload.hpp plus its digest, the batch master seed, the total
/// job count and the protocol list), the job-id ranges this shard covers,
/// and the engine's per-job outcomes for exactly those ids — everything the
/// merge layer needs to verify that K shard files really are disjoint
/// covering pieces of one sweep before folding them into a single
/// `BatchReport`.
///
/// The format is line-oriented text, one record per line, space-separated
/// fields, headed by `arl-shard-report <version>`:
///
///   arl-shard-report 2
///   sweep <digest-hex> <canonical workload name>
///   seed <batch master seed>
///   jobs <total job count of the whole sweep>
///   fault <canonical fault name>             (optional; absent means `none`)
///   range <begin> <end>                      (1+ lines, ascending, disjoint)
///   protocol <registry name>                 (1+ lines, cross-product order)
///   threads <workers used>
///   wall-ms <wall time, round-trippable double>
///   cache <hits> <misses> <evictions> <schedule-builds> <entries>  (optional)
///   job <id> <protocol> <disposition> <n> <sigma> <feasible> <simulated>
///       <valid> <leader|-> <iterations> <steps> <local> <global> <fp-hex>
///       <tx> <clean> <collisions> <wakeups> <node-rounds> <max-node-tx>
///       <max-node-awake> <drops> <corruptions> <crashes> <delayed-wakes>
///   breakdown <protocol> <jobs> <feasible> <valid> <elected> <no-leader>
///       <failed> <detected-fault> <total-local> <max-local> <tx> <clean>
///       <collisions> <wakeups> <node-rounds> <max-node-tx> <max-node-awake>
///       <drops> <corruptions> <crashes> <delayed-wakes>
///   end <job line count> <body digest>
///
/// The parser is strict: it rejects unknown versions, missing or reordered
/// sections, malformed fields, a sweep description that is not the canonical
/// spelling of a registered workload (identity is re-parsed through
/// `engine::parse_workload`, never trusted as an opaque string), job ids
/// that do not exactly enumerate the declared ranges, breakdown lines that
/// disagree with the job lines they summarize, a wrong trailing count, and
/// trailing garbage.  The `end` line additionally carries a digest of every
/// byte above it, so *any* corruption — including a field the grammar and
/// cross-checks would both accept, like a flipped node-count digit — throws
/// `ReportFormatError` instead of merging quietly (fuzzed by
/// tests/test_fuzz.cpp).

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dist/shard.hpp"
#include "engine/batch_runner.hpp"

namespace arl::dist {

/// Thrown when a shard report file is malformed, truncated, internally
/// inconsistent, or of an unsupported version.
class ReportFormatError : public std::runtime_error {
 public:
  explicit ReportFormatError(const std::string& what) : std::runtime_error(what) {}
};

/// The current (and only) wire-format version.  Bumped on any change to the
/// line grammar; readers reject every version they were not built for, so a
/// fleet mixing binaries fails loudly instead of merging misparsed numbers.
inline constexpr std::uint32_t kShardReportVersion = 2;

/// Identity of the sweep a shard belongs to.  Two shard reports merge only
/// when every field matches: same workload (digest + description), same
/// master seed (coin streams), same total job count (the partition target),
/// same fault plan (it changes every outcome) and same protocol list (the
/// cross-product axis).
struct SweepKey {
  std::uint64_t digest = 0;            ///< sweep_digest(description)
  std::string description;             ///< canonical workload name (engine::WorkloadSpec)
  std::uint64_t seed = 0;              ///< batch master seed
  engine::JobId total_jobs = 0;        ///< job count of the whole sweep
  std::string fault = "none";          ///< canonical fault name (fault::FaultSpec)
  std::vector<std::string> protocols;  ///< registry names, cross-product order

  friend bool operator==(const SweepKey& a, const SweepKey& b) = default;
};

/// Stable 64-bit digest of a sweep description (the `sweep` line carries
/// both, and merge verifies they agree — the digest catches a description
/// edited by hand, the description makes mismatch errors readable).  For a
/// canonical workload name this equals `engine::WorkloadSpec::digest()`, so
/// a spec's digest feeds a SweepKey directly.
[[nodiscard]] std::uint64_t sweep_digest(std::string_view description);

/// One shard's (or a partial merge's) results: the sweep identity, the
/// job-id ranges covered — sorted, disjoint, coalesced — and a BatchReport
/// whose jobs are exactly those global ids in ascending order.
struct ShardReport {
  SweepKey key;
  std::vector<JobRange> ranges;
  engine::BatchReport report;
};

/// Assembles a shard report from one engine run, validating that the
/// report's job ids are exactly `range` (throws support::ContractViolation
/// otherwise — a misuse, not a wire-format problem).
[[nodiscard]] ShardReport make_shard_report(SweepKey key, JobRange range,
                                            engine::BatchReport report);

/// Serializes `shard` in the versioned text format above.
void write_shard_report(const ShardReport& shard, std::ostream& out);

/// Parses one shard report, enforcing the full grammar and every internal
/// consistency rule documented above.  Throws ReportFormatError on any
/// violation; never returns a partially-filled report.
[[nodiscard]] ShardReport read_shard_report(std::istream& in);

}  // namespace arl::dist
