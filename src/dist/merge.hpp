#pragma once

/// \file merge.hpp
/// Folding shard reports back into one `BatchReport`.
///
/// The merge is an algebra over `ShardReport`s of the same sweep:
/// `merge_shards` combines any set of shards with pairwise-disjoint job
/// ranges into a partial report covering their union, and the operation is
/// associative and order-insensitive — merging {s0, s1} then s2 equals
/// merging s0 with {s1, s2} equals merging all three at once (asserted by
/// tests/test_dist.cpp).  `complete_report` then requires the accumulated
/// ranges to tile [0, total_jobs) exactly and produces the final
/// `BatchReport`, bit-identical in every job outcome and every aggregate to
/// the same sweep run unsharded in one process.
///
/// Verification is mandatory, not advisory: shards that disagree on the
/// sweep identity (digest, description, seed, job count, protocol list) or
/// whose ranges overlap throw `MergeError`, and a gapped cover is rejected
/// at completion — a partial result can never masquerade as the sweep.

#include <stdexcept>
#include <string>
#include <vector>

#include "dist/report_io.hpp"

namespace arl::dist {

/// Thrown when shard reports cannot be merged: mismatched sweep identity,
/// overlapping ranges, or an incomplete cover at completion time.
class MergeError : public std::runtime_error {
 public:
  explicit MergeError(const std::string& what) : std::runtime_error(what) {}
};

/// Merges shard reports (at least one) of the same sweep into one partial
/// report covering the union of their ranges.  Job outcomes are reassembled
/// in global job-id order and the aggregates recomputed through the same
/// fold a single-process batch uses (engine::aggregate_outcomes), so the
/// result is independent of the order — or grouping — in which shards are
/// merged.  Wall time is summed (total compute), the worker count is the
/// maximum, and cache counters are summed when any shard carried them.
/// Throws MergeError on identity mismatch or range overlap.
[[nodiscard]] ShardReport merge_shards(const std::vector<ShardReport>& shards);

/// Requires `merged` to cover [0, total_jobs) exactly and returns its
/// BatchReport — the sweep's result, bit-identical to an unsharded run.
/// Throws MergeError when jobs are missing.
[[nodiscard]] engine::BatchReport complete_report(ShardReport merged);

/// The complement of `merged`'s cover in [0, key.total_jobs): the job-id
/// ranges a partially completed sweep still has to run, sorted and
/// disjoint (empty when the cover is complete).  This is the resume
/// primitive: run each missing range with `arl sweep --shard=B-E`, merge
/// the new shard reports with the surviving ones, and `complete_report`
/// yields the bit-identical uninterrupted result.
[[nodiscard]] std::vector<JobRange> missing_ranges(const ShardReport& merged);

}  // namespace arl::dist
