#pragma once

/// \file shard.hpp
/// Deterministic shard planner for distributed sweeps.
///
/// A sweep of N jobs is split across K processes (or hosts) by giving shard
/// i the i-th of K contiguous job-id ranges.  The plan is a pure function of
/// (N, K): every participant — workers started by `arl sweep --workers`,
/// hand-launched `arl sweep --shard=i/K` invocations on different machines,
/// the merge verifier — computes the same ranges without coordination.
///
/// Reproducibility contract: shard i/K of a sweep executes *exactly* the
/// jobs a single-process run would execute for the ids in `shard_range(N,
/// i/K)`, bit for bit.  This holds because (1) job sources are pure
/// functions of the global job id (engine/job.hpp), (2) per-job coin seeds
/// are `job_coin_seed(batch_seed, global id)` and `BatchRunner::run_range`
/// executes a shard under the global ids, and (3) ranges are contiguous and
/// tile [0, N) exactly, so the union of the shard outcomes is the
/// single-process outcome vector (asserted by tests/test_dist.cpp at
/// K ∈ {1, 2, 3, 7} across the full protocol registry).
///
/// Balance: ranges differ in size by at most one job — the first N mod K
/// shards take ceil(N/K) jobs, the rest floor(N/K) — so no shard ever waits
/// on a partner more than one job longer than itself.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "engine/job.hpp"

namespace arl::dist {

/// Which of K shards this process runs: the "i/K" of `--shard=i/K`.
struct ShardSpec {
  std::uint32_t index = 0;  ///< shard number, in [0, count)
  std::uint32_t count = 1;  ///< total number of shards K, >= 1

  /// The "i/K" notation, round-trippable through parse_shard.
  [[nodiscard]] std::string name() const;

  friend bool operator==(const ShardSpec& a, const ShardSpec& b) = default;
};

/// Parses "i/K" (strict: decimal digits, one slash, i < K, K >= 1).  Throws
/// support::ContractViolation on anything else.
[[nodiscard]] ShardSpec parse_shard(std::string_view text);

/// A half-open range of global job ids.
struct JobRange {
  engine::JobId begin = 0;
  engine::JobId end = 0;

  [[nodiscard]] engine::JobId size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin == end; }

  friend bool operator==(const JobRange& a, const JobRange& b) = default;
};

/// Parses "B-E" as the half-open global job-id range [B, E) (strict:
/// decimal digits, one dash, B < E).  This is the resume notation: `arl
/// merge --missing` names a coverage gap this way and `arl sweep
/// --shard=B-E` re-runs exactly those global ids.  Throws
/// support::ContractViolation on anything else.
[[nodiscard]] JobRange parse_job_range(std::string_view text);

/// The contiguous job-id range shard `shard.index` of `shard.count` runs in
/// a sweep of `total_jobs` jobs (possibly empty when K > N).  Pure function
/// of its arguments; ranges of the K shards tile [0, total_jobs) exactly.
[[nodiscard]] JobRange shard_range(engine::JobId total_jobs, const ShardSpec& shard);

/// All K ranges of the plan, in shard order (shard_ranges(N, K)[i] ==
/// shard_range(N, {i, K})).
[[nodiscard]] std::vector<JobRange> shard_ranges(engine::JobId total_jobs, std::uint32_t count);

}  // namespace arl::dist
