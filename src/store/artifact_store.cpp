#include "store/artifact_store.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "config/fingerprint.hpp"
#include "config/io.hpp"
#include "core/schedule_io.hpp"
#include "obs/metrics.hpp"
#include "support/assert.hpp"
#include "support/hash.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ARL_STORE_HAS_POSIX_IO 1
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ARL_STORE_HAS_POSIX_IO 0
#include <cstdio>
#include <filesystem>
#endif

namespace arl::store {

namespace {

/// Store-private key domain, distinct from the config/schedule/classification
/// fingerprint seeds, so entry names never alias any of the content digests
/// the entry embeds.
constexpr std::uint64_t kEntryKeySeed = 0x5704EULL;

/// Seed of the trailing `end` digest over the entry body.
constexpr std::uint64_t kBodyDigestSeed = 0x5704EB0D7ULL;

std::uint64_t entry_key(const config::Configuration& configuration, radio::ChannelModel model,
                        bool fast_classifier) {
  return support::Hash64(kEntryKeySeed)
      .absorb(config::fingerprint(configuration))
      .absorb(static_cast<std::uint64_t>(model))
      .absorb(fast_classifier ? 1 : 0)
      .digest();
}

std::string hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

std::uint64_t parse_hex64(const std::string& token) {
  ARL_EXPECTS(
      token.size() == 16 && token.find_first_not_of("0123456789abcdef") == std::string::npos,
      "artifact field must be 16 lowercase hex digits");
  std::uint64_t value = 0;
  for (const char c : token) {
    value = (value << 4) | static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  return value;
}

/// Composes the full entry file contents (including the `end` line).
std::string compose_entry(std::uint64_t key, const config::Configuration& configuration,
                          radio::ChannelModel model, bool fast_classifier,
                          const core::CompiledConfiguration& compiled) {
  std::ostringstream body;
  body << "arl-artifact 1\n";
  body << "key " << hex64(key) << '\n';
  body << "model " << (model == radio::ChannelModel::CollisionDetection ? "cd" : "nocd") << '\n';
  body << "fast " << (fast_classifier ? 1 : 0) << '\n';
  body << "config-fingerprint " << hex64(config::fingerprint(configuration)) << '\n';
  body << "classification-fingerprint "
       << hex64(core::classification_fingerprint(compiled.classification)) << '\n';
  if (compiled.schedule != nullptr) {
    body << "schedule-fingerprint " << hex64(core::schedule_fingerprint(*compiled.schedule))
         << '\n';
  } else {
    body << "schedule-fingerprint -\n";
  }
  config::to_text(configuration, body);
  core::classification_to_text(compiled.classification, body);
  if (compiled.schedule != nullptr) {
    core::schedule_to_text(*compiled.schedule, body);
  }
  std::string text = body.str();
  text += "end " + hex64(support::hash_text_bulk(text, kBodyDigestSeed)) + '\n';
  return text;
}

bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') {
      continue;
    }
    return true;
  }
  return false;
}

/// Parses and fully verifies an entry file's contents against the queried
/// key.  Throws (support::ContractViolation or std::exception) on any
/// corruption or mismatch; the caller turns that into a rejected miss.
core::CompiledConfiguration parse_entry(const std::string& text, std::uint64_t key,
                                        const config::Configuration& configuration,
                                        radio::ChannelModel model, bool fast_classifier) {
  // The `end` line is the last one; everything before it is covered by the
  // digest.  Splitting on the raw bytes (not content lines) means a single
  // flipped bit anywhere — even in a comment — rejects the file.
  ARL_EXPECTS(!text.empty() && text.back() == '\n', "artifact must end in a newline");
  const auto last_line_start = text.rfind('\n', text.size() - 2);
  ARL_EXPECTS(last_line_start != std::string::npos, "artifact has no body");
  const std::string end_line = text.substr(last_line_start + 1, text.size() - last_line_start - 2);
  const std::string body = text.substr(0, last_line_start + 1);
  {
    std::istringstream parse(end_line);
    std::string keyword;
    std::string digest;
    parse >> keyword >> digest;
    ARL_EXPECTS(!parse.fail() && keyword == "end", "artifact missing 'end' digest line");
    ARL_EXPECTS(parse_hex64(digest) == support::hash_text_bulk(body, kBodyDigestSeed),
                "artifact body digest mismatch");
  }

  std::istringstream in(body);
  std::string line;
  std::string keyword;
  std::string value;
  const auto field = [&](const char* name) {
    ARL_EXPECTS(next_content_line(in, line), "artifact truncated");
    std::istringstream parse(line);
    parse >> keyword >> value;
    ARL_EXPECTS(!parse.fail() && keyword == name, "malformed artifact header field");
  };

  field("arl-artifact");
  ARL_EXPECTS(value == "1", "unknown artifact format version");
  field("key");
  ARL_EXPECTS(parse_hex64(value) == key, "artifact key mismatch");
  field("model");
  ARL_EXPECTS(value == (model == radio::ChannelModel::CollisionDetection ? "cd" : "nocd"),
              "artifact channel model mismatch");
  field("fast");
  ARL_EXPECTS(value == (fast_classifier ? "1" : "0"), "artifact classifier choice mismatch");
  field("config-fingerprint");
  ARL_EXPECTS(parse_hex64(value) == config::fingerprint(configuration),
              "artifact configuration fingerprint mismatch");
  field("classification-fingerprint");
  const std::uint64_t classification_digest = parse_hex64(value);
  field("schedule-fingerprint");
  const bool has_schedule = value != "-";
  const std::uint64_t schedule_digest = has_schedule ? parse_hex64(value) : 0;

  // The embedded sections.  config::from_text is self-terminating, so the
  // sections parse back to back from the same stream.
  const config::Configuration stored = config::from_text(in);
  ARL_EXPECTS(stored == configuration,
              "artifact stores a different configuration (key collision)");

  core::CompiledConfiguration compiled;
  compiled.classification = core::classification_from_text(in);
  ARL_EXPECTS(core::classification_fingerprint(compiled.classification) == classification_digest,
              "artifact classification fingerprint mismatch");
  ARL_EXPECTS(compiled.classification.model == model, "artifact classification model mismatch");
  if (has_schedule) {
    auto schedule = std::make_shared<core::CanonicalSchedule>(core::schedule_from_text(in));
    ARL_EXPECTS(core::schedule_fingerprint(*schedule) == schedule_digest,
                "artifact schedule fingerprint mismatch");
    compiled.schedule = std::move(schedule);
  }
  return compiled;
}

bool file_exists(const std::string& path) {
#if ARL_STORE_HAS_POSIX_IO
  struct ::stat info {};
  return ::stat(path.c_str(), &info) == 0;
#else
  std::error_code ec;
  return std::filesystem::exists(path, ec);
#endif
}

/// mkdir -p.  Returns false on failure; true when the directory exists.
bool make_directories(const std::string& path) {
#if ARL_STORE_HAS_POSIX_IO
  std::string prefix;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    start = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) {
      continue;
    }
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return false;
    }
  }
  struct ::stat info {};
  return ::stat(path.c_str(), &info) == 0 && S_ISDIR(info.st_mode);
#else
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  return std::filesystem::is_directory(path, ec);
#endif
}

/// Writes `text` to `final_path` via a private tmp sibling: write, fsync,
/// rename, fsync the directory.  Returns false on any failure (the tmp file
/// is unlinked best-effort; the final path is never left partial).
bool write_entry_atomically(const std::string& directory, const std::string& final_path,
                            const std::string& tmp_path, const std::string& text) {
#if ARL_STORE_HAS_POSIX_IO
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return false;
  }
  std::size_t written = 0;
  bool ok = true;
  while (written < text.size()) {
    const ::ssize_t n = ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ok = false;
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  ok = ok && ::fsync(fd) == 0;
  ok = ::close(fd) == 0 && ok;
  ok = ok && ::rename(tmp_path.c_str(), final_path.c_str()) == 0;
  if (!ok) {
    ::unlink(tmp_path.c_str());
    return false;
  }
  // Make the rename itself durable.
  const int dir_fd = ::open(directory.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    (void)::close(dir_fd);
  }
  return true;
#else
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out << text;
    if (!out.good()) {
      std::remove(tmp_path.c_str());
      return false;
    }
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return false;
  }
  (void)directory;
  return true;
#endif
}

}  // namespace

ArtifactStoreStats ArtifactStoreStats::since(const ArtifactStoreStats& earlier) const {
  ArtifactStoreStats delta;
  delta.hits = hits - earlier.hits;
  delta.misses = misses - earlier.misses;
  delta.rejected = rejected - earlier.rejected;
  delta.saves = saves - earlier.saves;
  delta.skipped = skipped - earlier.skipped;
  delta.errors = errors - earlier.errors;
  return delta;
}

ArtifactStore::ArtifactStore(std::string directory) : directory_(std::move(directory)) {
  ARL_EXPECTS(!directory_.empty(), "artifact store needs a directory path");
  if (!make_directories(directory_)) {
    throw std::runtime_error("artifact store: cannot create directory '" + directory_ + "'");
  }
}

std::string ArtifactStore::entry_path(const config::Configuration& configuration,
                                      radio::ChannelModel model, bool fast_classifier) const {
  return directory_ + '/' + hex64(entry_key(configuration, model, fast_classifier)) + ".arl";
}

std::shared_ptr<const core::CompiledConfiguration> ArtifactStore::load(
    const config::Configuration& configuration, radio::ChannelModel model, bool fast_classifier) {
  const obs::PhaseTimer span(obs::Phase::StoreLoad);
  const std::uint64_t key = entry_key(configuration, model, fast_classifier);
  const std::string path = directory_ + '/' + hex64(key) + ".arl";

  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.misses;
      return nullptr;
    }
    std::ostringstream sink;
    sink << in.rdbuf();
    if (!in.good() && !in.eof()) {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.errors;
      ++stats_.misses;
      return nullptr;
    }
    text = sink.str();
  }

  try {
    auto compiled = std::make_shared<core::CompiledConfiguration>(
        parse_entry(text, key, configuration, model, fast_classifier));
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return compiled;
  } catch (const std::exception&) {
    // Corrupt, truncated, foreign-format or colliding entry: a miss, never
    // a wrong artifact.
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rejected;
    ++stats_.misses;
    return nullptr;
  }
}

void ArtifactStore::save(const config::Configuration& configuration, radio::ChannelModel model,
                         bool fast_classifier, const core::CompiledConfiguration& compiled) {
  const obs::PhaseTimer span(obs::Phase::StoreSave);
  const std::uint64_t key = entry_key(configuration, model, fast_classifier);
  const std::string path = directory_ + '/' + hex64(key) + ".arl";

  // An entry on disk is at least classification-complete; only a schedule
  // upgrade justifies rewriting it (and a classification-only save must
  // never downgrade a schedule-bearing entry).
  if (compiled.schedule == nullptr && file_exists(path)) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.skipped;
    return;
  }

  std::uint64_t tmp_id = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tmp_id = tmp_counter_++;
  }
#if ARL_STORE_HAS_POSIX_IO
  const std::string tmp_path =
      path + ".tmp." + std::to_string(::getpid()) + "." + std::to_string(tmp_id);
#else
  const std::string tmp_path = path + ".tmp." + std::to_string(tmp_id);
#endif

  const std::string text = compose_entry(key, configuration, model, fast_classifier, compiled);
  const bool ok = write_entry_atomically(directory_, path, tmp_path, text);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (ok) {
    ++stats_.saves;
  } else {
    ++stats_.errors;
  }
}

ArtifactStoreStats ArtifactStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace arl::store
