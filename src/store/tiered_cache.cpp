#include "store/tiered_cache.hpp"

#include "obs/metrics.hpp"

namespace arl::store {

TieredScheduleCache::TieredScheduleCache(std::string directory, std::size_t memory_capacity)
    : memory_(memory_capacity), artifacts_(std::move(directory)) {}

std::shared_ptr<const core::CompiledConfiguration> TieredScheduleCache::lookup(
    const config::Configuration& configuration, radio::ChannelModel model, bool fast_classifier) {
  if (auto hit = memory_.lookup(configuration, model, fast_classifier)) {
    return hit;
  }
  if (auto loaded = artifacts_.load(configuration, model, fast_classifier)) {
    // Promote the disk hit so repeat lookups stay in memory.  store() takes
    // the artifact by value; the copy is cheap — the schedule rides along as
    // a shared_ptr and only the classification records are duplicated.
    const obs::PhaseTimer span(obs::Phase::CachePromote);
    return memory_.store(configuration, model, fast_classifier, *loaded);
  }
  return nullptr;
}

std::shared_ptr<const core::CompiledConfiguration> TieredScheduleCache::store(
    const config::Configuration& configuration, radio::ChannelModel model, bool fast_classifier,
    core::CompiledConfiguration compiled) {
  // Write-through: memory first (it may upgrade/merge with a resident
  // entry), then persist what the memory tier actually settled on.
  auto stored = memory_.store(configuration, model, fast_classifier, std::move(compiled));
  artifacts_.save(configuration, model, fast_classifier, *stored);
  return stored;
}

}  // namespace arl::store
