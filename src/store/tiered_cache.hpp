#pragma once

/// \file tiered_cache.hpp
/// Two-tier schedule cache: the engine's in-memory sharded LRU in front of
/// the on-disk artifact store, both behind `core::ScheduleCacheHandle`.
///
/// Lookups probe memory first; a memory miss falls through to the store,
/// and a verified disk hit is promoted into the memory tier so repeat
/// lookups stay off the filesystem.  Stores are write-through: the entry
/// lands in the LRU *and* on disk immediately, so a SIGKILL at any point
/// loses at most the artifact currently being compiled — an
/// eviction-triggered spill would instead lose every dirty entry still
/// resident.  Both tiers verify the full (configuration, model, classifier)
/// key on a match, so the tiered handle inherits the contract that a digest
/// collision or a corrupt file degrades to a miss, never to wrong
/// artifacts, and store-on runs stay bit-identical to store-off runs.

#include <memory>
#include <string>

#include "engine/schedule_cache.hpp"
#include "store/artifact_store.hpp"

namespace arl::store {

class TieredScheduleCache final : public core::ScheduleCacheHandle {
 public:
  /// Opens (creating if needed) the store at `directory` with an in-memory
  /// tier of `memory_capacity` entries.
  TieredScheduleCache(std::string directory, std::size_t memory_capacity);

  TieredScheduleCache(const TieredScheduleCache&) = delete;
  TieredScheduleCache& operator=(const TieredScheduleCache&) = delete;

  [[nodiscard]] std::shared_ptr<const core::CompiledConfiguration> lookup(
      const config::Configuration& configuration, radio::ChannelModel model,
      bool fast_classifier) override;

  std::shared_ptr<const core::CompiledConfiguration> store(
      const config::Configuration& configuration, radio::ChannelModel model, bool fast_classifier,
      core::CompiledConfiguration compiled) override;

  /// The memory tier (a full `ScheduleCacheHandle` of its own — handing it
  /// out as the shared cache is how a request opts out of the disk tier
  /// without giving up the warm LRU).
  [[nodiscard]] engine::ScheduleCache& memory() { return memory_; }

  /// The disk tier.
  [[nodiscard]] ArtifactStore& artifacts() { return artifacts_; }

 private:
  engine::ScheduleCache memory_;
  ArtifactStore artifacts_;
};

}  // namespace arl::store
