#pragma once

/// \file artifact_store.hpp
/// Content-addressed on-disk store of compiled configuration artifacts.
///
/// The classification/compilation a job front-loads is O(n³·Δ) (Lemma 3.5)
/// and a pure function of (configuration, channel model, classifier choice)
/// — work already paid for should never be paid twice, not even across
/// process boundaries.  The store persists `core::CompiledConfiguration`
/// entries as one text file per key under a flat directory:
///
///     <dir>/<key16hex>.arl
///
/// where the key digests the same triple the in-memory `ScheduleCache`
/// keys on, under a store-private seed.  Each entry file is line-oriented
/// and self-verifying:
///
///     arl-artifact 1
///     key <hex16>
///     model <cd|nocd>
///     fast <0|1>
///     config-fingerprint <hex16>
///     classification-fingerprint <hex16>
///     schedule-fingerprint <hex16|->
///     <embedded config::to_text>
///     <embedded classification_to_text>
///     <embedded schedule_to_text, iff schedule-fingerprint != ->
///     end <hex16>
///
/// The trailing `end` digest covers every preceding byte; a load verifies
/// it, re-parses the sections, checks the stored configuration equals the
/// queried one (digest collisions degrade to a miss, per the
/// `ScheduleCacheHandle` contract) and re-derives both artifact
/// fingerprints.  Any mismatch, truncation or parse error rejects the file
/// and reads as a miss — never as a wrong artifact.
///
/// Writes are crash-safe: the entry is composed in memory, written to a
/// private `*.tmp*` sibling, fsync'd, renamed over the final name, and the
/// directory fsync'd — a process killed mid-write leaves at most a `.tmp`
/// file that no load will ever open.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/election.hpp"

namespace arl::store {

/// Counters of one store handle's lifetime.  Like the cache counters these
/// never influence outcomes; they describe disk traffic.
struct ArtifactStoreStats {
  std::uint64_t hits = 0;      ///< loads that produced a verified artifact
  std::uint64_t misses = 0;    ///< loads that found no entry file
  std::uint64_t rejected = 0;  ///< loads that found a corrupt/mismatched file (counts as a miss)
  std::uint64_t saves = 0;     ///< entries written (tmp+rename completed)
  std::uint64_t skipped = 0;   ///< saves elided because the entry on disk is already as good
  std::uint64_t errors = 0;    ///< I/O failures (the store keeps working; results are unaffected)

  /// Counter growth between an `earlier` snapshot and this one.
  [[nodiscard]] ArtifactStoreStats since(const ArtifactStoreStats& earlier) const;

  friend bool operator==(const ArtifactStoreStats& a, const ArtifactStoreStats& b) = default;
};

/// The on-disk tier.  Thread-safe: loads and saves take no lock beyond the
/// stats mutex (distinct keys touch distinct files; same-key racers both
/// write equivalent bytes and rename atomically).  All I/O failures are
/// absorbed into the stats — the store degrades to "always miss" rather
/// than failing a sweep.
class ArtifactStore {
 public:
  /// Opens (and creates, including parents) the store directory; throws
  /// std::runtime_error when the path exists but is not a directory or
  /// cannot be created.
  explicit ArtifactStore(std::string directory);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// The verified artifact for the key, or null (miss / corrupt entry).
  [[nodiscard]] std::shared_ptr<const core::CompiledConfiguration> load(
      const config::Configuration& configuration, radio::ChannelModel model, bool fast_classifier);

  /// Persists the entry (tmp+rename+fsync).  Skips the write when the file
  /// already exists and `compiled` carries no schedule — an existing entry
  /// is at least as complete, and a schedule-bearing entry must never be
  /// downgraded to a classification-only one.
  void save(const config::Configuration& configuration, radio::ChannelModel model,
            bool fast_classifier, const core::CompiledConfiguration& compiled);

  /// Snapshot of the counters.
  [[nodiscard]] ArtifactStoreStats stats() const;

  /// The store directory as given.
  [[nodiscard]] const std::string& directory() const { return directory_; }

  /// The entry file path for a key (exposed for tests that corrupt it).
  [[nodiscard]] std::string entry_path(const config::Configuration& configuration,
                                       radio::ChannelModel model, bool fast_classifier) const;

 private:
  std::string directory_;
  mutable std::mutex mutex_;  ///< guards stats_ and tmp_counter_
  ArtifactStoreStats stats_;
  std::uint64_t tmp_counter_ = 0;
};

}  // namespace arl::store
