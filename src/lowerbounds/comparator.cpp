#include "lowerbounds/comparator.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arl::lowerbounds {

ComparisonResult compare_executions(const config::Configuration& a,
                                    const config::Configuration& b, const radio::Drip& drip,
                                    radio::SimulatorOptions options) {
  ARL_EXPECTS(a.size() == b.size(), "transcript comparison needs equal node counts");
  options.history_window = std::nullopt;  // keep full histories for the comparison

  const radio::RunResult run_a = radio::simulate(a, drip, options);
  const radio::RunResult run_b = radio::simulate(b, drip, options);

  ComparisonResult result;
  for (graph::NodeId v = 0; v < a.size(); ++v) {
    const radio::NodeOutcome& na = run_a.nodes[v];
    const radio::NodeOutcome& nb = run_b.nodes[v];
    auto report = [&](config::Round round, const char* what) {
      result.divergent_node = v;
      result.divergence_round = round;
      result.difference = what;
    };
    if (na.wake_round != nb.wake_round || na.forced_wake != nb.forced_wake) {
      report(std::min(na.wake_round, nb.wake_round), "wake round");
      return result;
    }
    const std::size_t shared = std::min(na.history.size(), nb.history.size());
    for (std::size_t i = 0; i < shared; ++i) {
      if (na.history[i] != nb.history[i]) {
        report(na.wake_round + static_cast<config::Round>(i), "history entry");
        return result;
      }
    }
    if (na.history.size() != nb.history.size() || na.terminated != nb.terminated ||
        (na.terminated && na.done_round != nb.done_round)) {
      report(na.wake_round + static_cast<config::Round>(shared), "termination");
      return result;
    }
    if (na.elected != nb.elected) {
      report(na.wake_round + na.done_round, "decision");
      return result;
    }
  }
  result.identical = true;
  return result;
}

}  // namespace arl::lowerbounds
