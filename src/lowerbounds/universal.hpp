#pragma once

/// \file universal.hpp
/// Proposition 4.4 as an executable adversary experiment: no universal
/// distributed algorithm elects a leader on all feasible configurations,
/// even restricted to the 4-node family H_m.
///
/// The proof: any universal algorithm makes its tag-0 nodes first transmit
/// in some global round t; on H_{t+1} that very transmission wakes the two
/// end nodes simultaneously and the execution stays symmetric forever.  The
/// harness takes any concrete candidate, measures t, sweeps m, and reports
/// where (and how) the candidate breaks — which the theorem predicts happens
/// no later than the vicinity of m = t + 1.

#include <optional>
#include <string>

#include "config/configuration.hpp"
#include "radio/program.hpp"
#include "radio/simulator.hpp"

namespace arl::lowerbounds {

/// A natural "universal" attempt (parameterized waiting time):
///   - a spontaneously woken node listens `wait` rounds; if still unwoken by
///     a message it transmits '1' once and keeps listening;
///   - a node woken by a message (or hearing one before its own
///     transmission) becomes a responder: it transmits the ack '2' once in
///     the following round, then listens;
///   - everyone terminates at local round `horizon`.
/// Decision: leader iff the node transmitted '1' before hearing any message.
/// This elects correctly on many configurations (e.g. a two-node path with
/// far-apart tags) but — per Proposition 4.4 — must fail on some H_m.
class BeepCandidate final : public radio::Drip {
 public:
  /// `wait` = listening rounds before the first transmission; `horizon` =
  /// local round of termination (must exceed wait + 1).
  BeepCandidate(config::Round wait, config::Round horizon);

  [[nodiscard]] std::unique_ptr<radio::NodeProgram> instantiate(
      const radio::NodeEnv& env) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::optional<std::size_t> history_window() const override { return 4; }

  [[nodiscard]] config::Round wait() const { return wait_; }

 private:
  config::Round wait_;
  config::Round horizon_;
};

/// Outcome of one candidate-vs-family probe.
struct UniversalProbe {
  std::string candidate;                   ///< protocol name
  config::Round first_tx_round = 0;        ///< measured t: first global tx (on a large H_M)
  std::optional<config::Tag> breaking_m;   ///< smallest m in [1, max_m] where election fails
  std::string failure_mode;                ///< "no leader" / "<k> leaders" / "not terminated"
  std::vector<config::Tag> succeeded_on;   ///< the m values where the candidate did elect
};

/// Runs `candidate` on H_1..H_max_m and reports the first failure.
/// `options` controls the simulation (a default horizon is applied).
[[nodiscard]] UniversalProbe probe_universal(const radio::Drip& candidate, config::Tag max_m,
                                             radio::SimulatorOptions options = {});

/// Measures t: the first global round in which any node transmits when
/// `candidate` runs on `configuration`.  Returns nullopt if nothing was ever
/// transmitted within the horizon.
[[nodiscard]] std::optional<config::Round> first_transmission_round(
    const config::Configuration& configuration, const radio::Drip& candidate,
    radio::SimulatorOptions options = {});

}  // namespace arl::lowerbounds
