#include "lowerbounds/symmetry.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace arl::lowerbounds {

std::optional<config::Round> first_history_divergence(const radio::NodeOutcome& u,
                                                      const radio::NodeOutcome& v) {
  ARL_EXPECTS(u.history_dropped == 0 && v.history_dropped == 0,
              "divergence measurement needs full histories (disable windowing)");
  const std::size_t shared = std::min(u.history.size(), v.history.size());
  for (std::size_t i = 0; i < shared; ++i) {
    if (u.history[i] != v.history[i]) {
      return static_cast<config::Round>(i);
    }
  }
  return std::nullopt;
}

std::optional<config::Round> uniqueness_round(const radio::RunResult& run, graph::NodeId node) {
  ARL_EXPECTS(node < run.nodes.size(), "node out of range");
  config::Round latest = 0;
  for (std::size_t other = 0; other < run.nodes.size(); ++other) {
    if (other == node) {
      continue;
    }
    const auto divergence = first_history_divergence(run.nodes[node], run.nodes[other]);
    if (!divergence) {
      return std::nullopt;  // some node shadows this one forever
    }
    latest = std::max(latest, *divergence);
  }
  return latest;
}

}  // namespace arl::lowerbounds
