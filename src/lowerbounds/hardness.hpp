#pragma once

/// \file hardness.hpp
/// Which configurations are HARD?  Proposition 4.1's family G_m drives the
/// Classifier through Θ(n) iterations — close to the ⌈n/2⌉ ceiling of
/// Lemma 3.4.  These searches hunt for worst-case tag assignments on a given
/// topology: exhaustively for small n, by random-restart hill climbing for
/// larger ones.  They quantify how extremal the paper's hand-built families
/// are, and supply adversarial workloads for the scaling benchmarks.

#include <cstdint>

#include "config/configuration.hpp"
#include "support/rng.hpp"

namespace arl::lowerbounds {

/// A configuration together with its Classifier cost.
struct HardnessResult {
  std::vector<config::Tag> tags;    ///< the tag assignment found
  std::uint32_t iterations = 0;     ///< Classifier iterations it forces
  bool feasible = false;            ///< its verdict
  std::uint64_t evaluated = 0;      ///< assignments examined by the search
};

/// Exhaustive search over all tag vectors in {0..max_tag}^n for the
/// assignment maximizing Classifier iterations (ties: first found).
/// Requires (max_tag+1)^n manageable — guard: n * log2(max_tag+1) <= 24.
[[nodiscard]] HardnessResult hardest_tags_exhaustive(const graph::Graph& graph,
                                                     config::Tag max_tag);

/// Random-restart hill climbing: perturbs one tag at a time, keeps strict
/// improvements, restarts on plateaus.  `budget` bounds total evaluations.
[[nodiscard]] HardnessResult hardest_tags_search(const graph::Graph& graph, config::Tag max_tag,
                                                 support::Rng& rng, std::uint64_t budget);

}  // namespace arl::lowerbounds
