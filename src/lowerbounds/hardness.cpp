#include "lowerbounds/hardness.hpp"

#include <cmath>

#include "core/fast_classifier.hpp"
#include "support/assert.hpp"

namespace arl::lowerbounds {

namespace {

/// Evaluates one assignment; updates `best` if strictly more iterations.
void consider(const graph::Graph& graph, const std::vector<config::Tag>& tags,
              HardnessResult& best) {
  const auto result = core::FastClassifier{}.run(config::Configuration(graph, tags));
  ++best.evaluated;
  if (result.iterations > best.iterations) {
    best.iterations = result.iterations;
    best.tags = tags;
    best.feasible = result.feasible();
  }
}

}  // namespace

HardnessResult hardest_tags_exhaustive(const graph::Graph& graph, config::Tag max_tag) {
  const graph::NodeId n = graph.node_count();
  ARL_EXPECTS(n >= 1, "graph must be non-empty");
  const double bits = n * std::log2(static_cast<double>(max_tag) + 1.0);
  ARL_EXPECTS(bits <= 24.0, "exhaustive search space too large; use hardest_tags_search");

  HardnessResult best;
  std::vector<config::Tag> tags(n, 0);
  for (;;) {
    consider(graph, tags, best);
    graph::NodeId position = 0;
    while (position < n && tags[position] == max_tag) {
      tags[position] = 0;
      ++position;
    }
    if (position == n) {
      break;
    }
    ++tags[position];
  }
  return best;
}

HardnessResult hardest_tags_search(const graph::Graph& graph, config::Tag max_tag,
                                   support::Rng& rng, std::uint64_t budget) {
  const graph::NodeId n = graph.node_count();
  ARL_EXPECTS(n >= 1, "graph must be non-empty");
  ARL_EXPECTS(budget >= 1, "need a positive budget");

  HardnessResult best;
  while (best.evaluated < budget) {
    // Restart from a random assignment.
    std::vector<config::Tag> current(n);
    for (auto& tag : current) {
      tag = static_cast<config::Tag>(rng.below(static_cast<std::uint64_t>(max_tag) + 1));
    }
    auto score = [&](const std::vector<config::Tag>& tags) {
      const auto result = core::FastClassifier{}.run(config::Configuration(graph, tags));
      ++best.evaluated;
      if (result.iterations > best.iterations) {
        best.iterations = result.iterations;
        best.tags = tags;
        best.feasible = result.feasible();
      }
      return result.iterations;
    };
    std::uint32_t current_score = score(current);

    // Steepest-of-random-neighbour hill climb with a small patience.
    std::uint32_t stale = 0;
    while (stale < 4 * n && best.evaluated < budget) {
      const auto node = static_cast<graph::NodeId>(rng.below(n));
      const auto new_tag =
          static_cast<config::Tag>(rng.below(static_cast<std::uint64_t>(max_tag) + 1));
      if (current[node] == new_tag) {
        ++stale;
        continue;
      }
      const config::Tag old_tag = current[node];
      current[node] = new_tag;
      const std::uint32_t candidate_score = score(current);
      if (candidate_score > current_score) {
        current_score = candidate_score;
        stale = 0;
      } else {
        current[node] = old_tag;
        ++stale;
      }
    }
  }
  return best;
}

}  // namespace arl::lowerbounds
