#include "lowerbounds/universal.hpp"

#include "config/families.hpp"
#include "support/assert.hpp"

namespace arl::lowerbounds {

namespace {

constexpr radio::Message kProbe = 1;  ///< first-mover payload
constexpr radio::Message kAck = 2;    ///< responder payload

/// Program of BeepCandidate (see header for the behaviour).
class BeepProgram final : public radio::NodeProgram {
 public:
  BeepProgram(config::Round wait, config::Round horizon) : wait_(wait), horizon_(horizon) {}

  radio::Action decide(config::Round local_round, const radio::HistoryView& history) override {
    if (done_) {
      return radio::Action::terminate();
    }
    const radio::HistoryEntry newest = history.entry(local_round - 1);
    if (newest.is_message() && !transmitted_) {
      // A message arrived before our own transmission: become a responder.
      if (!responder_) {
        responder_ = true;
        ack_pending_ = true;
      }
    }
    if (local_round >= horizon_) {
      done_ = true;
      return radio::Action::terminate();
    }
    if (ack_pending_) {
      ack_pending_ = false;
      return radio::Action::transmit(kAck);
    }
    if (!responder_ && !transmitted_ && local_round == wait_ + 1) {
      transmitted_ = true;
      return radio::Action::transmit(kProbe);
    }
    return radio::Action::listen();
  }

  /// Leader iff this node fired the probe without having heard any message.
  [[nodiscard]] bool elected() const override { return transmitted_ && !responder_; }

 private:
  config::Round wait_;
  config::Round horizon_;
  bool responder_ = false;
  bool ack_pending_ = false;
  bool transmitted_ = false;
  bool done_ = false;
};

/// Trace sink recording the first global round with any transmission.
class FirstTxSink final : public radio::TraceSink {
 public:
  void on_action(graph::NodeId, config::Round global_round, config::Round,
                 const radio::Action& action) override {
    if (action.is_transmit() && !first_) {
      first_ = global_round;
    }
  }

  [[nodiscard]] std::optional<config::Round> first() const { return first_; }

 private:
  std::optional<config::Round> first_;
};

}  // namespace

BeepCandidate::BeepCandidate(config::Round wait, config::Round horizon)
    : wait_(wait), horizon_(horizon) {
  ARL_EXPECTS(horizon_ > wait_ + 1, "horizon must leave room for the probe transmission");
}

std::unique_ptr<radio::NodeProgram> BeepCandidate::instantiate(const radio::NodeEnv&) const {
  return std::make_unique<BeepProgram>(wait_, horizon_);
}

std::string BeepCandidate::name() const {
  return "beep-candidate(wait=" + std::to_string(wait_) + ")";
}

std::optional<config::Round> first_transmission_round(const config::Configuration& configuration,
                                                      const radio::Drip& candidate,
                                                      radio::SimulatorOptions options) {
  FirstTxSink sink;
  options.trace = &sink;
  (void)radio::simulate(configuration, candidate, options);
  return sink.first();
}

UniversalProbe probe_universal(const radio::Drip& candidate, config::Tag max_m,
                               radio::SimulatorOptions options) {
  ARL_EXPECTS(max_m >= 1, "need at least one family member");
  UniversalProbe probe;
  probe.candidate = candidate.name();

  // Measure t on the largest family member: with tags m, 0, 0, m+1 the
  // first transmission comes from the tag-0 nodes as long as t < m.
  if (const auto t = first_transmission_round(config::family_h(max_m), candidate, options)) {
    probe.first_tx_round = *t;
  }

  for (config::Tag m = 1; m <= max_m; ++m) {
    const config::Configuration configuration = config::family_h(m);
    const radio::RunResult run = radio::simulate(configuration, candidate, options);
    const auto leaders = run.leaders();
    if (run.all_terminated && leaders.size() == 1) {
      probe.succeeded_on.push_back(m);
      continue;
    }
    probe.breaking_m = m;
    if (!run.all_terminated) {
      probe.failure_mode = "not terminated";
    } else if (leaders.empty()) {
      probe.failure_mode = "no leader";
    } else {
      probe.failure_mode = std::to_string(leaders.size()) + " leaders";
    }
    break;
  }
  return probe;
}

}  // namespace arl::lowerbounds
