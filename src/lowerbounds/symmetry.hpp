#pragma once

/// \file symmetry.hpp
/// Symmetry-breaking measurements for the Ω(n) and Ω(σ) lower bounds
/// (Propositions 4.1 and 4.3).
///
/// Leader election requires the leader's history to differ from every other
/// node's (a decision function is a function of the history alone).  These
/// helpers measure, on an actual execution, when histories separate — the
/// quantity the lower-bound proofs reason about.

#include <optional>

#include "config/configuration.hpp"
#include "radio/simulator.hpp"

namespace arl::lowerbounds {

/// First local round i such that H_u[0..i] != H_v[0..i]; nullopt when one
/// history is a prefix of the other and they agree throughout.
[[nodiscard]] std::optional<config::Round> first_history_divergence(
    const radio::NodeOutcome& u, const radio::NodeOutcome& v);

/// First local round by which `node`'s history differs from the history of
/// EVERY other node — a lower bound on any decision function electing it.
/// nullopt when some other node's history never diverges (no election
/// possible at all).
[[nodiscard]] std::optional<config::Round> uniqueness_round(const radio::RunResult& run,
                                                            graph::NodeId node);

}  // namespace arl::lowerbounds
