#pragma once

/// \file comparator.hpp
/// Proposition 4.5 as an executable experiment: no distributed algorithm can
/// decide feasibility, because for every protocol there is a feasible
/// configuration (H_{t+1}) and an infeasible one (S_{t+1}) on which every
/// node's entire transcript is identical.
///
/// `compare_executions` runs one protocol on two equal-size configurations
/// and reports whether any node could ever tell the two runs apart — i.e.
/// whether wake rounds, wake kinds, per-round histories, termination or
/// decisions differ anywhere.

#include <optional>
#include <string>

#include "config/configuration.hpp"
#include "radio/program.hpp"
#include "radio/simulator.hpp"

namespace arl::lowerbounds {

/// Result of a transcript comparison.
struct ComparisonResult {
  /// True when every node's observable execution is identical in both runs.
  bool identical = false;

  /// Node and global round of the first observable difference (when any).
  std::optional<graph::NodeId> divergent_node;
  std::optional<config::Round> divergence_round;

  /// What differed ("wake round", "history entry", "termination", "decision").
  std::string difference;
};

/// Runs `drip` on both configurations (same node count required) and
/// compares the executions node-by-node, aligned by node index.
[[nodiscard]] ComparisonResult compare_executions(const config::Configuration& a,
                                                  const config::Configuration& b,
                                                  const radio::Drip& drip,
                                                  radio::SimulatorOptions options = {});

}  // namespace arl::lowerbounds
